// determinism: the ranking pipeline must be bit-reproducible.
//
// Three sub-checks:
//  (a) Iteration over std::unordered_{map,set} in src/rank/, src/ensemble/,
//      src/stream/ and src/serve/. Hash-table iteration order depends on
//      the libstdc++ version, the insertion history, and (for pointer
//      keys) ASLR — when it flows into score accumulation, snapshot files
//      or wire output, two runs over the same corpus disagree. Rank over
//      sorted/indexed views instead, or suppress a genuinely
//      order-insensitive site with NOLINT(determinism): reason.
//  (b) Wall-clock / libc PRNG calls (time, rand, srand, clock) anywhere
//      outside src/util/rng — randomness and time must be injected
//      through the seeded utilities so replays reproduce.
//  (c) Clock reads (clock_gettime, gettimeofday, timerfd_*, and the
//      std::chrono clocks' ::now()) inside the order-sensitive subsystems
//      of (a). Request handling, ranking and snapshot production must not
//      branch on the time of day; the single sanctioned reader is the
//      serving tier's latency histogram (src/serve/latency_histogram*),
//      which measures durations without feeding them back into results.

#include "analyze/rules.h"

namespace analyze {

namespace {

bool InOrderSensitiveScope(const std::string& path) {
  for (const char* prefix :
       {"src/rank/", "src/ensemble/", "src/stream/", "src/serve/"}) {
    if (path.compare(0, std::string(prefix).size(), prefix) == 0) return true;
  }
  return false;
}

bool IsRngExempt(const std::string& path) {
  return path.compare(0, 12, "src/util/rng") == 0;
}

bool IsClockOrRand(const std::string& s) {
  return s == "time" || s == "rand" || s == "srand" || s == "clock";
}

/// The one module allowed to read a clock inside the order-sensitive
/// scopes: latency measurement never feeds back into ranking output.
bool IsHistogramExempt(const std::string& path) {
  const std::string prefix = "src/serve/latency_histogram";
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool IsPosixClockCall(const std::string& s) {
  return s == "clock_gettime" || s == "gettimeofday" ||
         s.compare(0, 8, "timerfd_") == 0;
}

bool IsChronoClockName(const std::string& s) {
  return s == "steady_clock" || s == "system_clock" ||
         s == "high_resolution_clock";
}

}  // namespace

void CheckDeterminism(const LexedFile& f, const FileModel& model,
                      const GlobalIndex& gi, std::vector<Finding>* out) {
  (void)model;
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  auto is_unordered = [&](const std::string& id) {
    return gi.unordered_members.count(id) > 0;
  };
  // File-local unordered declarations (locals, params, non-member fields).
  FileIndex local;
  for (size_t i = 0; i < t.size(); ++i) {
    // Reuse the index's declaration scan lazily: cheap inline version.
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
        t[i].text != "unordered_multimap" &&
        t[i].text != "unordered_multiset") {
      continue;
    }
    if (!IsPunct(t, i + 1, "<")) continue;
    int nest = 0;
    size_t j = i + 1;
    for (; j < t.size() && j < i + 256; ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "<") ++nest;
      else if (t[j].text == ">") { if (--nest <= 0) { ++j; break; } }
      else if (t[j].text == ">>") { nest -= 2; if (nest <= 0) { ++j; break; } }
      else if (t[j].text == ";" || t[j].text == "{") break;
    }
    while (j < t.size() && t[j].kind == TokKind::kPunct &&
           (t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent && t[j].text != "const") {
      local.unordered_local.insert(t[j].text);
    }
  }
  auto known_unordered = [&](const std::string& id) {
    return is_unordered(id) || local.unordered_local.count(id) > 0;
  };

  if (InOrderSensitiveScope(f.norm_path)) {
    for (size_t i = 0; i < t.size(); ++i) {
      // (a1) range-for over an unordered container.
      if (IsIdent(t, i, "for") && IsPunct(t, i + 1, "(")) {
        size_t close = MatchForward(t, i + 1);
        int nest = 0;
        size_t colon = 0;
        for (size_t j = i + 2; j < close; ++j) {
          if (t[j].kind != TokKind::kPunct) continue;
          if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++nest;
          else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --nest;
          else if (t[j].text == ":" && nest == 0) {
            colon = j;
            break;
          }
        }
        if (colon != 0) {
          for (size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind != TokKind::kIdent) continue;
            if (t[j].text == "this" || t[j].text == "std" ||
                t[j].text == "const" || t[j].text == "auto") {
              continue;
            }
            if (known_unordered(t[j].text)) {
              reporter.Report(
                  t[j].line, "determinism",
                  "range-for over unordered container '" + t[j].text +
                      "' in an order-sensitive subsystem; iterate a sorted "
                      "or indexed view so scores and output are "
                      "reproducible");
            }
            break;  // only the base of the range expression
          }
        }
      }
      // (a2) explicit iterator loops: X.begin() / X->cbegin().
      if (t[i].kind == TokKind::kIdent &&
          (t[i].text == "begin" || t[i].text == "cbegin") &&
          IsPunct(t, i + 1, "(") && i >= 2 &&
          (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->")) &&
          t[i - 2].kind == TokKind::kIdent && known_unordered(t[i - 2].text)) {
        reporter.Report(t[i].line, "determinism",
                        "iterating unordered container '" + t[i - 2].text +
                            "' in an order-sensitive subsystem");
      }
    }
  }

  // (c) Explicit clock reads inside the order-sensitive subsystems. The
  // latency histogram is the sanctioned wall-clock module; everything else
  // in serve/rank/ensemble/stream must take timestamps as inputs.
  if (InOrderSensitiveScope(f.norm_path) && !IsHistogramExempt(f.norm_path)) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      // clock_gettime(...) / gettimeofday(...) / timerfd_*(...)
      if (IsPosixClockCall(t[i].text) && IsPunct(t, i + 1, "(")) {
        reporter.Report(
            t[i].line, "determinism",
            "'" + t[i].text +
                "' reads the clock inside an order-sensitive subsystem; "
                "only src/serve/latency_histogram may read time — take "
                "timestamps as inputs instead");
        continue;
      }
      // steady_clock::now() and friends.
      if (IsChronoClockName(t[i].text) && IsPunct(t, i + 1, "::") &&
          IsIdent(t, i + 2, "now") && IsPunct(t, i + 3, "(")) {
        reporter.Report(
            t[i].line, "determinism",
            "'" + t[i].text +
                "::now()' reads the clock inside an order-sensitive "
                "subsystem; only src/serve/latency_histogram may read "
                "time — take timestamps as inputs instead");
      }
    }
  }

  // (b) time()/rand() outside util/rng.
  if (!IsRngExempt(f.norm_path)) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !IsClockOrRand(t[i].text)) continue;
      if (!IsPunct(t, i + 1, "(")) continue;
      if (i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
        continue;  // member method named time()/clock(), not libc
      }
      if (i > 0 && IsPunct(t, i - 1, "::") && !IsIdent(t, i - 2, "std")) {
        continue;  // SomeClass::time(...), not the libc function
      }
      reporter.Report(
          t[i].line, "determinism",
          "'" + t[i].text +
              "' is wall-clock/PRNG state outside src/util/rng; inject "
              "time or randomness through the seeded utilities");
    }
  }
}

}  // namespace analyze
