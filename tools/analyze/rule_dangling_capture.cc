// dangling-capture: a lambda that captures by reference and escapes the
// scope that owns the referents.
//
// A `[&]` (or `[&x]`) lambda is a bundle of pointers into the defining
// frame. Handing it to ThreadPool::Submit / Schedule, a std::thread, a
// member field, a container, or returning it means it can run after that
// frame is gone. The one sanctioned counter-example is the blocking
// iteration primitives (ParallelFor / ParallelForChunks), which drain
// every chunk before returning — by-ref bodies there are the intended
// idiom and never flagged.
//
// Interprocedural part: passing a ref-capturing lambda to a *named*
// function is only dangerous if that function lets its callable argument
// outlive the call. That is exactly the may-outlive summary the index
// computes per function (FnSummary::sink_escapes + forward_calls) and
// GlobalIndex::Finalize closes over the call graph into
// `fn_arg_escapers` — so a helper that merely forwards to Submit is
// caught cross-TU without annotations.
//
// `[this]`-only captures are exempt: the object is heap- or
// member-owned in every current use (worker loops), and member lifetime
// discipline belongs to shutdown ordering, not this rule.

#include "analyze/rules.h"

namespace analyze {

namespace {

bool IsForwardingWrapper(const std::string& s) {
  return s == "move" || s == "forward" || s == "ref" || s == "cref" ||
         s == "function" || s == "bind";
}

bool IsDirectEscapeSink(const std::string& s) {
  return s == "Submit" || s == "Schedule" || s == "push_back" ||
         s == "emplace_back" || s == "emplace" || s == "insert" ||
         s == "push" || s == "thread" || s == "async";
}

bool IsBlockingPrimitive(const std::string& s) {
  return s == "ParallelFor" || s == "ParallelForChunks";
}

/// Comma-joined list of the by-ref captures, for the message.
std::string DescribeRefs(const LambdaInfo& lam) {
  if (lam.default_ref) return "[&] (everything in scope)";
  std::string out;
  for (const std::string& n : lam.by_ref) {
    if (!out.empty()) out += ", ";
    out += "&" + n;
  }
  return out;
}

}  // namespace

void CheckDanglingCapture(const LexedFile& f, const FileModel& model,
                          const GlobalIndex& gi, std::vector<Finding>* out) {
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  for (const FunctionInfo& fn : model.functions) {
    std::vector<LambdaInfo> lambdas = FindLambdas(f, fn);

    // Names bound to ref-capturing lambdas: `auto work = [&...]{...}`.
    struct Named {
      std::string name;
      const LambdaInfo* lam;
    };
    std::vector<Named> named;
    for (const LambdaInfo& lam : lambdas) {
      bool dangerous = lam.default_ref || !lam.by_ref.empty();
      if (!dangerous) continue;
      if (lam.intro >= 2 && IsPunct(t, lam.intro - 1, "=") &&
          t[lam.intro - 2].kind == TokKind::kIdent &&
          (t[lam.intro - 2].text.empty() ||
           t[lam.intro - 2].text.back() != '_')) {
        named.push_back({t[lam.intro - 2].text, &lam});
      }
    }
    auto find_named = [&named](const std::string& id) -> const LambdaInfo* {
      for (const Named& n : named) {
        if (n.name == id) return n.lam;
      }
      return nullptr;
    };

    // Call-frame stack over the whole body, so each lambda intro (and
    // each use of a named lambda variable) knows its enclosing call.
    struct Frame {
      std::string callee;
      size_t close;
    };
    std::vector<Frame> frames;
    size_t stmt_start = fn.body_begin + 1;

    auto escape_route = [&](size_t site) -> std::string {
      // Innermost meaningful frame at `site` decides. Empty string means
      // "does not escape here".
      const Frame* sink = nullptr;
      for (size_t k = frames.size(); k-- > 0;) {
        if (IsForwardingWrapper(frames[k].callee)) continue;
        sink = &frames[k];
        break;
      }
      if (sink != nullptr) {
        if (IsBlockingPrimitive(sink->callee)) return "";
        if (IsDirectEscapeSink(sink->callee)) {
          return "'" + sink->callee + "'";
        }
        if (gi.fn_arg_escapers.count(sink->callee) > 0) {
          return "'" + sink->callee + "' (its callable argument outlives "
                 "the call)";
        }
        return "";
      }
      size_t ss = stmt_start;
      if (IsIdent(t, ss, "return")) return "return";
      if (IsIdent(t, ss, "this") && IsPunct(t, ss + 1, "->")) ss += 2;
      if (ss < site && t[ss].kind == TokKind::kIdent &&
          !t[ss].text.empty() && t[ss].text.back() == '_' &&
          IsPunct(t, ss + 1, "=")) {
        return "member '" + t[ss].text + "'";
      }
      return "";
    };

    for (size_t i = fn.body_begin + 1; i < fn.body_end && i < t.size(); ++i) {
      while (!frames.empty() && i >= frames.back().close) frames.pop_back();
      const Token& tok = t[i];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == ";" || tok.text == "{" || tok.text == "}") {
          stmt_start = i + 1;
        }
        continue;
      }
      if (tok.kind != TokKind::kIdent) continue;
      if (IsPunct(t, i + 1, "(")) {
        size_t close = MatchForward(t, i + 1);
        if (close < t.size()) frames.push_back({tok.text, close});
        continue;
      }
      // A named ref-capturing lambda used as a value.
      const LambdaInfo* via = find_named(tok.text);
      if (via == nullptr) continue;
      if (i + 2 == via->intro) continue;  // its own definition site
      std::string route = escape_route(i);
      if (route.empty()) continue;
      reporter.Report(
          tok.line, "dangling-capture",
          "lambda '" + tok.text + "' (defined at line " +
              std::to_string(via->line) + ", captures " +
              DescribeRefs(*via) +
              ") escapes its scope via " + route +
              "; by-ref captures dangle once the defining frame returns — "
              "capture by value, or keep the handoff inside a blocking "
              "ParallelFor/ParallelForChunks");
    }

    // Literal lambda expressions: region classification covers the
    // direct Submit/std::thread cases; the frame/statement context is
    // rebuilt per lambda for the other sinks (member assignment, return,
    // escaping named callee).
    for (const LambdaInfo& lam : lambdas) {
      bool dangerous = lam.default_ref || !lam.by_ref.empty();
      if (!dangerous) continue;
      std::string route;
      if (lam.region == RegionKind::kSubmit) {
        route = "ThreadPool::Submit/Schedule";
      } else if (lam.region == RegionKind::kThread) {
        route = "std::thread";
      } else {
        // Rebuild the frame/statement context at the intro token.
        frames.clear();
        stmt_start = fn.body_begin + 1;
        for (size_t i = fn.body_begin + 1; i < lam.intro && i < t.size();
             ++i) {
          while (!frames.empty() && i >= frames.back().close) {
            frames.pop_back();
          }
          const Token& tok = t[i];
          if (tok.kind == TokKind::kPunct) {
            if (tok.text == ";" || tok.text == "{" || tok.text == "}") {
              stmt_start = i + 1;
            }
            continue;
          }
          if (tok.kind == TokKind::kIdent && IsPunct(t, i + 1, "(")) {
            size_t close = MatchForward(t, i + 1);
            if (close < t.size()) frames.push_back({tok.text, close});
          }
        }
        while (!frames.empty() && lam.intro >= frames.back().close) {
          frames.pop_back();
        }
        if (lam.intro >= 2 && IsPunct(t, lam.intro - 1, "=")) {
          continue;  // named definition — handled by the use-site walk
        }
        route = escape_route(lam.intro);
      }
      if (route.empty()) continue;
      reporter.Report(
          lam.line, "dangling-capture",
          "lambda captures " + DescribeRefs(lam) + " and escapes via " +
              route +
              "; by-ref captures dangle once the defining frame returns — "
              "capture by value (or [this] for owned members) instead");
    }
  }
}

}  // namespace analyze
