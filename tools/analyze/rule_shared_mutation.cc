// shared-mutation: a write through a by-reference capture inside a
// parallel lambda body.
//
// The deterministic ParallelFor contract (src/util/parallel_for.h) allows
// worker bodies to touch shared state in exactly three shapes: under a
// Mutex, through a std::atomic, or into a per-chunk slot derived from the
// chunk index (`out[i] = ...` where disjoint chunks own disjoint i). A
// plain assignment / compound assignment / increment of a by-ref-captured
// local from inside a ParallelFor body, a ThreadPool::Submit lambda, or a
// std::thread body is a data race waiting for a second core — the exact
// bug class TSan only catches on executed schedules.
//
// Scope notes:
//  - Writes to subscripted expressions (`x[i] op ...`) are assumed
//    per-chunk disjoint and never flagged; that is the sanctioned shape.
//  - Member fields ('_'-suffixed) are guard-consistency's domain, not
//    this rule's: `this` capture is ubiquitous and lock discipline for
//    members is checked cross-TU there.
//  - A write under a MutexLock scope inside the lambda body is exempt,
//    as is any identifier declared std::atomic anywhere in the file.

#include "analyze/rules.h"

#include <map>

namespace analyze {

namespace {

const char* RegionName(RegionKind k) {
  switch (k) {
    case RegionKind::kParallelFor:
      return "ParallelFor";
    case RegionKind::kSubmit:
      return "ThreadPool::Submit";
    case RegionKind::kThread:
      return "std::thread";
    default:
      return "parallel";
  }
}

bool IsCompoundAssign(const std::string& s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "^=" || s == "|=" || s == "&=" || s == "<<=" ||
         s == ">>=";
}

bool IsDeclStopWord(const std::string& s) {
  return s == "return" || s == "throw" || s == "new" || s == "delete" ||
         s == "case" || s == "else" || s == "do" || s == "goto" ||
         s == "co_return" || s == "co_yield" || s == "operator" ||
         s == "sizeof" || s == "typename" || s == "using" ||
         s == "namespace" || s == "template";
}

/// Names declared inside [begin, end): `Type name`, `Type& name`,
/// `auto name`, `Tpl<...> name` (the '>' case), and structured bindings.
/// Heuristic on purpose — a missed declaration yields a triageable false
/// positive, not a crash.
void CollectLocalDecls(const std::vector<Token>& t, size_t begin, size_t end,
                       std::set<std::string>* out) {
  for (size_t i = begin; i < end && i < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && !IsDeclStopWord(t[i].text)) {
      size_t j = i + 1;
      while (j < end && t[j].kind == TokKind::kPunct &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "&&")) {
        ++j;
      }
      if (j < end && t[j].kind == TokKind::kIdent &&
          t[j].text != "const" && !IsDeclStopWord(t[j].text)) {
        const std::string& next =
            j + 1 < t.size() && t[j + 1].kind == TokKind::kPunct
                ? t[j + 1].text
                : std::string();
        if (next == "=" || next == ";" || next == "{" || next == "(" ||
            next == "," || next == ":" || next == ")") {
          out->insert(t[j].text);
        }
      }
      // Structured bindings: `auto [a, b] = ...` / `auto& [a, b] : ...`.
      if (t[i].text == "auto" && j < end && IsPunct(t, j, "[")) {
        size_t close = MatchForward(t, j);
        for (size_t k = j + 1; k < close && k < end; ++k) {
          if (t[k].kind == TokKind::kIdent) out->insert(t[k].text);
        }
      }
    }
    // `> name` / `>& name` after a template argument list closes a
    // declaration too.
    if (IsPunct(t, i, ">")) {
      size_t j = i + 1;
      while (j < end && t[j].kind == TokKind::kPunct &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "&&")) {
        ++j;
      }
      if (j < end && t[j].kind == TokKind::kIdent && t[j].text != "const") {
        const std::string& next =
            j + 1 < t.size() && t[j + 1].kind == TokKind::kPunct
                ? t[j + 1].text
                : std::string();
        if (next == "=" || next == ";" || next == "{" || next == "(") {
          out->insert(t[j].text);
        }
      }
    }
  }
}

/// Collects every identifier declared std::atomic in the file (locals and
/// members alike) — writes through them are synchronization, not races.
void CollectFileAtomics(const std::vector<Token>& t,
                        std::set<std::string>* out) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i, "atomic") || !IsPunct(t, i + 1, "<")) continue;
    // MatchForward only pairs ()/{}/[], so walk the <...> nesting here;
    // the lexer fuses '>>', which closes two levels.
    int nest = 0;
    size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "<") ++nest;
      else if (t[j].text == "<<") nest += 2;
      else if (t[j].text == ">" && --nest <= 0) break;
      else if (t[j].text == ">>" && (nest -= 2) <= 0) break;
      else if (t[j].text == ";" || t[j].text == "{") break;  // never closed
    }
    if (j >= t.size() || t[j].text == ";" || t[j].text == "{") continue;
    ++j;
    while (j < t.size() && t[j].kind == TokKind::kPunct &&
           (t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        t[j].text != "const") {
      out->insert(t[j].text);
    }
  }
}

/// Brace-scoped MutexLock tracking limited to one lambda body: fills
/// `locked` with the token ranges during which some guard is alive.
struct LockRange {
  size_t begin;
  size_t end;
};
std::vector<LockRange> FindLockRanges(const std::vector<Token>& t,
                                      size_t body_begin, size_t body_end) {
  std::vector<LockRange> out;
  struct Open {
    size_t start;
    int depth;
  };
  std::vector<Open> open;
  int depth = 0;
  for (size_t i = body_begin; i < body_end && i < t.size(); ++i) {
    if (IsPunct(t, i, "{")) ++depth;
    if (IsPunct(t, i, "}")) {
      while (!open.empty() && open.back().depth == depth) {
        out.push_back({open.back().start, i});
        open.pop_back();
      }
      --depth;
    }
    if (IsIdent(t, i, "MutexLock")) open.push_back({i, depth});
  }
  for (const Open& o : open) out.push_back({o.start, body_end});
  return out;
}

bool InAnyRange(const std::vector<LockRange>& rs, size_t i) {
  for (const LockRange& r : rs) {
    if (i > r.begin && i < r.end) return true;
  }
  return false;
}

}  // namespace

void CheckSharedMutation(const LexedFile& f, const FileModel& model,
                         const GlobalIndex& gi, std::vector<Finding>* out) {
  const std::vector<Token>& t = f.tokens;
  Reporter reporter(f, out);

  std::set<std::string> atomics;
  CollectFileAtomics(t, &atomics);
  for (const std::string& a : gi.atomic_members) atomics.insert(a);

  for (const FunctionInfo& fn : model.functions) {
    std::vector<LambdaInfo> lambdas = FindLambdas(f, fn);
    for (size_t li = 0; li < lambdas.size(); ++li) {
      const LambdaInfo& lam = lambdas[li];
      if (!lam.parallel) continue;
      if (!lam.default_ref && lam.by_ref.empty()) continue;
      // Nested lambdas inherit parallelism but carry kNone themselves;
      // name the region of the nearest classified ancestor.
      RegionKind region = lam.region;
      for (size_t e = lam.enclosing;
           region == RegionKind::kNone && e != static_cast<size_t>(-1);
           e = lambdas[e].enclosing) {
        region = lambdas[e].region;
      }

      // Names that are the lambda's own per-invocation state.
      std::set<std::string> local;
      for (const std::string& p : lam.params) local.insert(p);
      CollectLocalDecls(t, lam.body_begin + 1, lam.body_end, &local);

      // Token ranges of directly nested lambdas — their writes are
      // reported against the innermost lambda, not this one.
      std::vector<LockRange> nested;
      for (size_t lj = 0; lj < lambdas.size(); ++lj) {
        if (lambdas[lj].enclosing == li) {
          nested.push_back({lambdas[lj].intro, lambdas[lj].body_end});
        }
      }
      std::vector<LockRange> locked =
          FindLockRanges(t, lam.body_begin, lam.body_end);

      auto is_shared_ref = [&](const std::string& name) {
        if (name.empty() || name.back() == '_') return false;  // member
        if (local.count(name) > 0) return false;
        if (atomics.count(name) > 0) return false;
        if (lam.by_ref.count(name) > 0) return true;
        return lam.default_ref && lam.by_val.count(name) == 0;
      };
      std::map<int, bool> reported;  // one finding per line
      auto report_write = [&](size_t name_idx, const char* how) {
        const std::string& name = t[name_idx].text;
        if (!is_shared_ref(name)) return;
        if (InAnyRange(locked, name_idx)) return;
        if (reported[t[name_idx].line]) return;
        reported[t[name_idx].line] = true;
        reporter.Report(
            t[name_idx].line, "shared-mutation",
            "'" + name + "' is captured by reference and " + how +
                " inside a " + RegionName(region) +
                " body with no Mutex held, no std::atomic type, and no "
                "per-chunk subscript; chunks of a parallel region may only "
                "share state through those three shapes");
      };

      for (size_t i = lam.body_begin + 1; i < lam.body_end && i < t.size();
           ++i) {
        if (InAnyRange(nested, i)) continue;
        if (t[i].kind != TokKind::kPunct) continue;
        const std::string& op = t[i].text;
        if (IsCompoundAssign(op)) {
          if (op == "=" && i > 0 &&
              (IsPunct(t, i - 1, "<") || IsPunct(t, i - 1, ">") ||
               IsPunct(t, i - 1, "!"))) {
            continue;  // unfused comparison remnants — not assignments
          }
          // Walk back over a member chain to the base identifier; a ']'
          // on the path means a subscripted (per-chunk) target.
          size_t j = i;
          while (j >= 2 && t[j - 1].kind == TokKind::kIdent &&
                 (IsPunct(t, j - 2, ".") || IsPunct(t, j - 2, "->"))) {
            j -= 2;
          }
          if (j >= 1 && IsPunct(t, j - 1, "]")) continue;  // x[i] = ...
          if (j >= 1 && t[j - 1].kind == TokKind::kIdent) {
            report_write(j - 1, op == "=" ? "assigned" : "updated");
          }
          continue;
        }
        if (op == "++" || op == "--") {
          if (i > 0 && t[i - 1].kind == TokKind::kIdent) {
            report_write(i - 1, "incremented");  // postfix
          } else if (i + 1 < t.size() && t[i + 1].kind == TokKind::kIdent &&
                     !IsPunct(t, i + 2, "[")) {
            report_write(i + 1, "incremented");  // prefix, unsubscripted
          }
        }
      }
    }
  }
}

}  // namespace analyze
