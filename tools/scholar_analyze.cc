// scholar_analyze: scope-aware dataflow analyzer for the ScholarRank
// codebase — the second-generation companion to the token-level
// scholar_lint. Where the linter pattern-matches single tokens, the
// analyzer builds a per-file scope model (function boundaries, class
// context, brace depth) plus a cross-file index, and runs the rules:
//
//   unchecked-status  Status/Result<T> values must be consumed; `(void)`
//                     and static_cast<void> discards are flagged too.
//   hot-loop-alloc    no allocation / container growth / string building
//                     inside ranking sweep loops (src/rank/kernel/,
//                     src/rank/*.cc, src/stream/frontier_rank.cc);
//                     `// analyze:init-scope` exempts init-phase scopes.
//   lock-order        the cross-file mutex acquisition graph (direct
//                     MutexLock sites + transitive acquisition through
//                     calls, seeded by REQUIRES annotations) must be
//                     acyclic; cycles are reported with a witness path.
//   determinism       no unordered-container iteration in rank/ensemble/
//                     stream/serve, no time()/rand() outside util/rng,
//                     and no clock reads (clock_gettime, gettimeofday,
//                     timerfd_*, chrono ::now()) in those subsystems
//                     outside src/serve/latency_histogram*.
//
// Parallel-region pack (v3) — reasons about the repo's own parallel
// primitives (ParallelFor bodies, ThreadPool::Submit/Schedule lambdas,
// std::thread constructors), interprocedurally via the merged index:
//
//   shared-mutation    by-ref captures written in a parallel body need a
//                      Mutex, a std::atomic, or a per-chunk subscript.
//   dangling-capture   by-ref-capturing lambdas must not escape their
//                      scope (Submit, std::thread, member storage,
//                      containers, return, or a callee whose may-outlive
//                      summary escapes its callable argument).
//   atomic-confinement explicit weak memory orders only in the audited
//                      modules (serve/latency_histogram*, util/
//                      thread_pool*) or under a reasoned NOLINT.
//   guard-consistency  a field guarded in one function must not be bare
//                      in code reachable from a parallel context.
//   stale-nolint       a NOLINT naming one of the four rules above must
//                      still suppress a live finding.
//
// Suppression: `// NOLINT(rule): reason` on the flagged line — the rule
// list and a non-empty reason are both mandatory (scholar_lint's bare
// NOLINT is not honored here; an audit needs an audit record).
//
// Usage:
//   scholar_analyze [options] <file.cc|file.h>...
//     --compile-commands=FILE  add every "file" entry of a compile
//                              commands database under src/ or tools/
//     --sarif=FILE             write SARIF 2.1.0 log
//     --baseline=FILE          suppress findings listed in the baseline
//     --write-baseline=FILE    write current findings as a new baseline
//     --cache=FILE             per-file content-hash result cache
//     --jobs=N                 lex and analyze files on N threads
//                              (default 1; 0 = hardware concurrency).
//                              Output is byte-identical at any N: chunk
//                              results land in pre-sized slots and every
//                              merge walks them in sorted path order.
//
// Exit codes: 0 clean (or all findings baselined), 1 findings,
// 2 usage/IO error. Diagnostics: `file:line: rule: message`; wall-time
// breakdown goes to stderr so stdout/SARIF stay deterministic.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/core.h"
#include "analyze/index.h"
#include "analyze/model.h"
#include "analyze/output.h"
#include "analyze/rules.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace {

/// Bumping this salt invalidates every cache entry; do so whenever rule
/// behavior changes (cached findings would otherwise go stale silently).
constexpr uint64_t kAnalyzerSalt = 0x73636132u;  // "sca2"

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Extracts the "file" entries from a compile_commands.json without a
/// JSON parser: scans for `"file"` keys and takes their string values.
/// Only sources under src/ or tools/ are analyzed (tests have their own
/// fixtures that deliberately violate rules).
std::vector<std::string> FilesFromCompileCommands(const std::string& text) {
  std::vector<std::string> files;
  std::set<std::string> seen;
  size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    size_t colon = text.find(':', pos);
    if (colon == std::string::npos) break;
    size_t q1 = text.find('"', colon + 1);
    if (q1 == std::string::npos) break;
    size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    std::string file = text.substr(q1 + 1, q2 - q1 - 1);
    pos = q2 + 1;
    const std::string norm = analyze::NormalizePath(file);
    if (norm.compare(0, 4, "src/") != 0 && norm.compare(0, 6, "tools/") != 0) {
      continue;
    }
    if (seen.insert(norm).second) files.push_back(file);
  }
  return files;
}

struct PerFile {
  std::string path;       // as given on the command line
  std::string norm_path;
  uint64_t file_hash = 0;
  bool lexed = false;
  analyze::LexedFile lex;
  analyze::FileModel model;
  analyze::FileIndex index;
  bool findings_cached = false;
  std::vector<analyze::Finding> cached_findings;
  uint64_t cached_sig = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string compile_commands, sarif_path, baseline_path, write_baseline_path,
      cache_path;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> std::string {
      return arg.substr(std::string(flag).size());
    };
    if (arg.rfind("--compile-commands=", 0) == 0) {
      compile_commands = value("--compile-commands=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value("--sarif=");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value("--write-baseline=");
    } else if (arg.rfind("--cache=", 0) == 0) {
      cache_path = value("--cache=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const std::string v = value("--jobs=");
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        std::cerr << "scholar_analyze: --jobs wants a non-negative integer\n";
        return 2;
      }
      jobs = std::atoi(v.c_str());
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: scholar_analyze [--compile-commands=FILE] "
                   "[--sarif=FILE] [--baseline=FILE] [--write-baseline=FILE] "
                   "[--cache=FILE] [--jobs=N] <file>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "scholar_analyze: unknown option: " << arg << "\n";
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (!compile_commands.empty()) {
    std::string text;
    if (!ReadFile(compile_commands, &text)) {
      std::cerr << "scholar_analyze: cannot read " << compile_commands << "\n";
      return 2;
    }
    for (std::string& f : FilesFromCompileCommands(text)) {
      inputs.push_back(std::move(f));
    }
  }
  if (inputs.empty()) {
    std::cerr << "scholar_analyze: no input files (see --help)\n";
    return 2;
  }

  analyze::Cache cache;
  if (!cache_path.empty()) cache.Load(cache_path);

  // Worker pool shared by both passes. The calling thread participates in
  // every ParallelForChunks, so a pool of jobs-1 helpers yields `jobs`
  // total lanes; jobs<=1 runs serial through the identical chunk geometry.
  const size_t lanes = jobs == 1 ? 1 : scholar::ResolveThreads(jobs);
  std::unique_ptr<scholar::ThreadPool> pool;
  if (lanes > 1) pool = std::make_unique<scholar::ThreadPool>(lanes - 1);
  const auto t_start = std::chrono::steady_clock::now();

  // Pass 1: lex (or load from cache) and build the global index. Inputs
  // are deduplicated serially (first spelling of a normalized path wins),
  // then lexed into pre-sized slots — chunk geometry and slot order are
  // independent of the thread count, so the merge below is deterministic.
  std::vector<PerFile> files;
  {
    std::set<std::string> seen_norm;
    for (const std::string& path : inputs) {
      PerFile pf;
      pf.path = path;
      pf.norm_path = analyze::NormalizePath(path);
      if (!seen_norm.insert(pf.norm_path).second) continue;  // duplicate
      files.push_back(std::move(pf));
    }
  }
  std::vector<std::string> errors(files.size());
  scholar::ParallelForChunks(
      pool.get(), files.size(), 1,
      [&files, &errors, &cache, &cache_path](size_t, size_t begin,
                                             size_t end) {
        for (size_t i = begin; i < end; ++i) {
          PerFile& pf = files[i];
          std::string text;
          if (!ReadFile(pf.path, &text)) {
            errors[i] = "scholar_analyze: cannot read " + pf.path;
            continue;
          }
          pf.file_hash = analyze::Fnv1a(text, kAnalyzerSalt);
          const analyze::CacheEntry* hit =
              cache_path.empty() ? nullptr
                                 : cache.Lookup(pf.norm_path, pf.file_hash);
          if (hit != nullptr) {
            pf.index = hit->index;
            if (hit->has_findings) {
              pf.findings_cached = true;
              pf.cached_findings = hit->findings;
              pf.cached_sig = hit->findings_sig;
            }
          } else {
            pf.lex = analyze::Lex(pf.path, text);
            pf.model = analyze::BuildModel(pf.lex);
            pf.index = analyze::BuildFileIndex(pf.lex, pf.model);
            pf.lexed = true;
          }
        }
      });
  for (const std::string& err : errors) {
    if (!err.empty()) {
      std::cerr << err << "\n";
      return 2;
    }
  }

  std::sort(files.begin(), files.end(),
            [](const PerFile& a, const PerFile& b) {
              return a.norm_path < b.norm_path;
            });
  const auto t_pass1 = std::chrono::steady_clock::now();

  analyze::GlobalIndex gi;
  uint64_t global_sig = kAnalyzerSalt;
  for (const PerFile& pf : files) {
    gi.Merge(pf.index);
    global_sig = analyze::Fnv1a(pf.norm_path, global_sig);
    global_sig = analyze::Fnv1a(analyze::SerializeFileIndex(pf.index),
                                global_sig);
  }
  gi.Finalize();

  // Pass 2: per-file rules (cache-aware), in parallel into per-file
  // slots. Findings still include NOLINT-suppressed entries here — the
  // stale-nolint audit needs them; they are filtered before output.
  std::vector<std::vector<analyze::Finding>> slot_findings(files.size());
  std::fill(errors.begin(), errors.end(), std::string());
  scholar::ParallelForChunks(
      pool.get(), files.size(), 1,
      [&files, &errors, &slot_findings, &gi, global_sig](
          size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          PerFile& pf = files[i];
          std::vector<analyze::Finding>& file_findings = slot_findings[i];
          if (pf.findings_cached && pf.cached_sig == global_sig) {
            file_findings = pf.cached_findings;
            continue;
          }
          if (!pf.lexed) {
            // Index came from cache but findings are stale: re-lex.
            std::string text;
            if (!ReadFile(pf.path, &text)) {
              errors[i] = "scholar_analyze: cannot read " + pf.path;
              continue;
            }
            pf.lex = analyze::Lex(pf.path, text);
            pf.model = analyze::BuildModel(pf.lex);
            pf.lexed = true;
          }
          analyze::CheckUncheckedStatus(pf.lex, pf.model, gi, &file_findings);
          analyze::CheckHotLoopAlloc(pf.lex, pf.model, &file_findings);
          analyze::CheckDeterminism(pf.lex, pf.model, gi, &file_findings);
          analyze::CheckSharedMutation(pf.lex, pf.model, gi, &file_findings);
          analyze::CheckDanglingCapture(pf.lex, pf.model, gi, &file_findings);
          analyze::CheckAtomicConfinement(pf.lex, pf.model, &file_findings);
        }
      });
  for (const std::string& err : errors) {
    if (!err.empty()) {
      std::cerr << err << "\n";
      return 2;
    }
  }
  if (pool != nullptr) pool->Shutdown();

  std::vector<analyze::Finding> findings;
  for (size_t i = 0; i < files.size(); ++i) {
    const PerFile& pf = files[i];
    if (!cache_path.empty()) {
      analyze::CacheEntry entry;
      entry.file_hash = pf.file_hash;
      entry.index = pf.index;
      entry.has_findings = true;
      entry.findings_sig = global_sig;
      entry.findings = slot_findings[i];
      cache.Put(pf.norm_path, std::move(entry));
    }
    findings.insert(findings.end(), slot_findings[i].begin(),
                    slot_findings[i].end());
  }
  {
    std::vector<analyze::Finding> lock = analyze::CheckLockOrder(gi);
    findings.insert(findings.end(), lock.begin(), lock.end());
    std::vector<analyze::Finding> guard = analyze::CheckGuardConsistency(gi);
    findings.insert(findings.end(), guard.begin(), guard.end());
  }
  // Audit the parallel-pack suppressions against the full pre-filter
  // finding set, then drop the suppressed entries from the output.
  {
    std::vector<std::pair<std::string, const analyze::FileIndex*>> indexes;
    indexes.reserve(files.size());
    for (const PerFile& pf : files) {
      indexes.emplace_back(pf.norm_path, &pf.index);
    }
    std::vector<analyze::Finding> stale =
        analyze::CheckStaleNolints(indexes, findings);
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [](const analyze::Finding& f) {
                         return f.nolint_suppressed;
                       }),
        findings.end());
    findings.insert(findings.end(), stale.begin(), stale.end());
  }
  std::sort(findings.begin(), findings.end(),
            [](const analyze::Finding& a, const analyze::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  const auto t_pass2 = std::chrono::steady_clock::now();
  {
    auto ms = [](std::chrono::steady_clock::duration d) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
    };
    std::cerr << "scholar_analyze: timing jobs=" << lanes << " pass1="
              << ms(t_pass1 - t_start) << "ms pass2="
              << ms(t_pass2 - t_pass1) << "ms total="
              << ms(t_pass2 - t_start) << "ms\n";
  }

  if (!cache_path.empty() && !cache.Save(cache_path)) {
    std::cerr << "scholar_analyze: cannot write cache " << cache_path << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    if (!analyze::Baseline::Write(write_baseline_path, findings)) {
      std::cerr << "scholar_analyze: cannot write baseline "
                << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "scholar_analyze: wrote " << findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  size_t baselined = 0;
  if (!baseline_path.empty()) {
    analyze::Baseline baseline;
    if (!baseline.Load(baseline_path)) {
      std::cerr << "scholar_analyze: malformed baseline " << baseline_path
                << "\n";
      return 2;
    }
    baselined = baseline.Apply(&findings);
  }

  if (!sarif_path.empty() && !analyze::WriteSarif(sarif_path, findings)) {
    std::cerr << "scholar_analyze: cannot write SARIF " << sarif_path << "\n";
    return 2;
  }

  size_t active = 0;
  for (const analyze::Finding& f : findings) {
    if (f.baseline_suppressed) continue;
    ++active;
    std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
              << f.message << "\n";
  }
  std::cout << "scholar_analyze: " << files.size() << " file(s), " << active
            << " finding(s)";
  if (baselined > 0) std::cout << " (" << baselined << " baselined)";
  std::cout << "\n";
  return active > 0 ? 1 : 0;
}
