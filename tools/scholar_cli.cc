/// Command-line front end; all logic lives in cli/commands.* so it is unit
/// tested. See `scholar_cli help`.
#include <iostream>

#include "cli/commands.h"

int main(int argc, char** argv) {
  return scholar::cli::Main(argc, argv, &std::cout, &std::cerr);
}
