#!/usr/bin/env bash
# check_analysis.sh — the repo's CI story until hosted CI exists.
#
# Configures, builds, and tests every analysis flavor into its own build
# directory, then prints a pass/fail matrix:
#
#   plain   default RelWithDebInfo build, full ctest suite (incl. the
#           scholar_lint pass and the analysis-labeled tests)
#   asan    AddressSanitizer
#   tsan    ThreadSanitizer (concurrency suites are the point)
#   ubsan   UndefinedBehaviorSanitizer, -fno-sanitize-recover=all
#   tsa     clang -Wthread-safety -Werror compile gate (build only; skipped
#           with a note when no clang is on PATH, since the annotations are
#           no-ops elsewhere)
#
# Usage: tools/check_analysis.sh [--fast] [flavor...]
#   --fast     run only tier1-labeled tests instead of the full suite
#   flavor...  subset of: plain asan tsan ubsan tsa (default: all)
#
# Exit status is nonzero when any selected flavor fails. Build dirs are
# build-check-<flavor>/ at the repo root and are reused across runs.

set -u

cd "$(dirname "$0")/.." || exit 2
ROOT=$(pwd)
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
CTEST_ARGS=("--output-on-failure" "-j" "$JOBS")

FAST=0
FLAVORS=()
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    plain|asan|tsan|ubsan|tsa) FLAVORS+=("$arg") ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
[ ${#FLAVORS[@]} -eq 0 ] && FLAVORS=(plain asan tsan ubsan tsa)
[ "$FAST" -eq 1 ] && CTEST_ARGS+=("-L" "tier1|bench_smoke")

declare -A RESULT

cmake_flags_for() {
  case "$1" in
    plain) echo "" ;;
    asan)  echo "-DSCHOLAR_ENABLE_ASAN=ON" ;;
    tsan)  echo "-DSCHOLAR_ENABLE_TSAN=ON" ;;
    ubsan) echo "-DSCHOLAR_ENABLE_UBSAN=ON" ;;
    tsa)   echo "-DSCHOLAR_ENABLE_THREAD_SAFETY_ANALYSIS=ON" ;;
  esac
}

run_flavor() {
  local flavor=$1
  local build_dir="$ROOT/build-check-$flavor"
  local flags
  flags=$(cmake_flags_for "$flavor")
  local extra=()

  if [ "$flavor" = "tsa" ]; then
    # The thread-safety analysis is clang-only; the cmake option warns and
    # compiles the annotations as no-ops under other compilers, which
    # would make this flavor report a pass it did not earn.
    local clangxx
    clangxx=$(command -v clang++ || true)
    if [ -z "$clangxx" ]; then
      RESULT[$flavor]="SKIP (no clang++ on PATH)"
      return 0
    fi
    extra+=("-DCMAKE_CXX_COMPILER=$clangxx")
  fi

  echo "=== [$flavor] configure ==="
  # shellcheck disable=SC2086  # $flags is intentionally word-split
  if ! cmake -B "$build_dir" -S "$ROOT" $flags "${extra[@]}"; then
    RESULT[$flavor]="FAIL (configure)"
    return 1
  fi
  echo "=== [$flavor] build ==="
  if ! cmake --build "$build_dir" -j "$JOBS"; then
    RESULT[$flavor]="FAIL (build)"
    return 1
  fi
  if [ "$flavor" = "tsa" ]; then
    # Compiling warning-free under -Wthread-safety -Werror *is* the test.
    RESULT[$flavor]="PASS (compile gate)"
    return 0
  fi
  echo "=== [$flavor] test ==="
  if ! ctest --test-dir "$build_dir" "${CTEST_ARGS[@]}"; then
    RESULT[$flavor]="FAIL (tests)"
    return 1
  fi
  RESULT[$flavor]="PASS"
  return 0
}

STATUS=0
for flavor in "${FLAVORS[@]}"; do
  run_flavor "$flavor" || STATUS=1
done

echo
echo "================ analysis matrix ================"
for flavor in "${FLAVORS[@]}"; do
  printf "  %-6s %s\n" "$flavor" "${RESULT[$flavor]}"
done
echo "================================================="
exit $STATUS
