#!/usr/bin/env bash
# check_analysis.sh — the repo's CI story until hosted CI exists.
#
# Configures, builds, and tests every analysis flavor into its own build
# directory, then prints a pass/fail matrix:
#
#   plain   default RelWithDebInfo build, full ctest suite (incl. the
#           scholar_lint pass and the analysis-labeled tests)
#   asan    AddressSanitizer
#   tsan    ThreadSanitizer (concurrency suites are the point)
#   ubsan   UndefinedBehaviorSanitizer, -fno-sanitize-recover=all
#   tsa     clang -Wthread-safety -Werror compile gate (build only; skipped
#           with a note when no clang is on PATH, since the annotations are
#           no-ops elsewhere)
#   fuzz    opt-in via --fuzz[=seconds]: clang libFuzzer+ASan+UBSan run of
#           every harness in fuzz/, each budgeted to the given wall-clock
#           seconds (default 30) on top of the checked-in corpora. A new
#           crasher fails the flavor AND is auto-copied into
#           fuzz/corpus/<target>/regression/ so it becomes a permanent
#           replay test; commit it together with the parser fix. Skipped
#           with a note when no clang++ is on PATH.
#
#   analyze opt-in via --analyze: the static-analysis source gate —
#           scholar_lint plus the scholar_analyze dataflow analyzer
#           (unchecked-status, hot-loop-alloc, lock-order, determinism,
#           and the parallel pack: shared-mutation, dangling-capture,
#           atomic-confinement, guard-consistency, stale-nolint) over
#           every src/ and tools/ source, gated against
#           tools/analyze_baseline.txt, emitting SARIF to
#           build-check-analyze/analyze.sarif. The analyzer runs twice —
#           cold-serial (--jobs=1, empty cache) then warm-parallel
#           (--jobs=$(nproc), cache primed by the first run) — asserts
#           the two SARIF outputs are byte-identical, and prints both
#           wall times plus the speedup ratio (informative only; on a
#           1-core box the ratio hovers near 1). Both gates also run
#           inside the plain flavor's ctest pass (labels tier1;analysis),
#           so the --fast lane covers them; this flavor is the standalone
#           entry point that produces the SARIF artifact without a test
#           build.
#
# Usage: tools/check_analysis.sh [--fast] [--fuzz[=seconds]] [--bench-gate]
#                                [--analyze] [flavor...]
#   --fast     run only tier1-labeled tests (which include the fuzz_replay
#              corpus tests and the lint/analyzer source gates; the
#              analyzer gate runs with --jobs=0 (auto = nproc) against the
#              build tree's persistent cache, so repeat --fast runs are
#              warm) instead of the full suite
#   --fuzz[=N] also run the fuzz flavor, N seconds per harness (default 30)
#   --analyze  also run the analyze flavor (see above)
#   --bench-gate
#              also run the bench-gate flavor: rank_scaling --smoke across
#              the full iteration-engine variant matrix (scalar/simd x
#              double/float x plain/compressed x fixed/adaptive), then
#              serve_scaling --smoke against a live event-loop server. The
#              binaries assert their own contracts (scalar-vs-SIMD
#              bit-identity at every thread count and the <= 1e-6 float
#              drift bound; zero errors / zero dropped responses across
#              mid-run hot swaps and BUSY shedding under overload); any
#              violation fails the gate. Smoke timings are not
#              measurements — this gate checks contracts, not speed.
#   flavor...  subset of: plain asan tsan ubsan tsa (default: all)
#
# Exit status is nonzero when any selected flavor fails. Build dirs are
# build-check-<flavor>/ at the repo root and are reused across runs.

set -u

cd "$(dirname "$0")/.." || exit 2
ROOT=$(pwd)
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 2)}
CTEST_ARGS=("--output-on-failure" "-j" "$JOBS")

FAST=0
FUZZ=0
BENCH_GATE=0
ANALYZE=0
FUZZ_SECONDS=30
FLAVORS=()
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --fuzz) FUZZ=1 ;;
    --fuzz=*)
      FUZZ=1
      FUZZ_SECONDS="${arg#--fuzz=}"
      case "$FUZZ_SECONDS" in
        ''|*[!0-9]*) echo "--fuzz= wants a whole number of seconds" >&2; exit 2 ;;
      esac
      ;;
    --bench-gate) BENCH_GATE=1 ;;
    --analyze) ANALYZE=1 ;;
    plain|asan|tsan|ubsan|tsa) FLAVORS+=("$arg") ;;
    analyze) ANALYZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [ ${#FLAVORS[@]} -eq 0 ]; then
  # --fuzz / --bench-gate / --analyze alone mean "just that gate", not
  # "everything plus it".
  if [ "$FUZZ" -eq 1 ] || [ "$BENCH_GATE" -eq 1 ] || [ "$ANALYZE" -eq 1 ]; then
    FLAVORS=()
  else
    FLAVORS=(plain asan tsan ubsan tsa)
  fi
fi
[ "$FUZZ" -eq 1 ] && FLAVORS+=(fuzz)
[ "$BENCH_GATE" -eq 1 ] && FLAVORS+=(bench-gate)
[ "$ANALYZE" -eq 1 ] && FLAVORS+=(analyze)
# fuzz_replay is a subset of tier1, so the fast lane replays the corpora
# too; the label is spelled out to keep that property grep-able.
[ "$FAST" -eq 1 ] && CTEST_ARGS+=("-L" "tier1|bench_smoke|fuzz_replay")

declare -A RESULT

cmake_flags_for() {
  case "$1" in
    plain) echo "" ;;
    asan)  echo "-DSCHOLAR_ENABLE_ASAN=ON" ;;
    tsan)  echo "-DSCHOLAR_ENABLE_TSAN=ON" ;;
    ubsan) echo "-DSCHOLAR_ENABLE_UBSAN=ON" ;;
    tsa)   echo "-DSCHOLAR_ENABLE_THREAD_SAFETY_ANALYSIS=ON" ;;
    fuzz)  echo "-DSCHOLAR_ENABLE_FUZZERS=ON -DSCHOLARRANK_BUILD_BENCHMARKS=OFF -DSCHOLARRANK_BUILD_EXAMPLES=OFF" ;;
    bench-gate) echo "" ;;
    analyze) echo "" ;;
  esac
}

# Mirrors SCHOLAR_FUZZ_TARGETS in fuzz/CMakeLists.txt.
FUZZ_TARGETS=(graph_io ground_truth aminer snapshot serve_request edge_batch compressed_csr)

run_fuzz_budgeted() {
  local build_dir=$1
  local failed=()
  for t in "${FUZZ_TARGETS[@]}"; do
    local corpus_src="$ROOT/fuzz/corpus/$t"
    local work="$build_dir/fuzz-work/$t"
    mkdir -p "$work/corpus" "$work/artifacts"
    echo "=== [fuzz] $t: ${FUZZ_SECONDS}s budget ==="
    if ! "$build_dir/fuzz/fuzz_$t" \
        -max_total_time="$FUZZ_SECONDS" -timeout=10 -print_final_stats=1 \
        -artifact_prefix="$work/artifacts/" \
        "$work/corpus" "$corpus_src/seed" "$corpus_src/regression"; then
      failed+=("$t")
      # A crasher is a permanent regression input from now on: copy it
      # into the checked-in corpus so fuzz_replay_<t> reproduces it on
      # every build flavor until the parser is fixed — then commit both.
      local a
      for a in "$work/artifacts/"*; do
        [ -f "$a" ] || continue
        cp "$a" "$corpus_src/regression/"
        echo "[fuzz] NEW CRASHER: copied $(basename "$a") into fuzz/corpus/$t/regression/"
      done
    fi
  done
  if [ ${#failed[@]} -gt 0 ]; then
    echo "[fuzz] crashing targets: ${failed[*]}" >&2
    return 1
  fi
  return 0
}

run_flavor() {
  local flavor=$1
  local build_dir="$ROOT/build-check-$flavor"
  local flags
  flags=$(cmake_flags_for "$flavor")
  local extra=()

  if [ "$flavor" = "tsa" ] || [ "$flavor" = "fuzz" ]; then
    # Both gates are clang-only (-Wthread-safety / -fsanitize=fuzzer); the
    # cmake options degrade to warnings under other compilers, which would
    # make these flavors report a pass they did not earn.
    local clangxx
    clangxx=$(command -v clang++ || true)
    if [ -z "$clangxx" ]; then
      RESULT[$flavor]="SKIP (no clang++ on PATH)"
      return 0
    fi
    extra+=("-DCMAKE_CXX_COMPILER=$clangxx")
  fi

  echo "=== [$flavor] configure ==="
  # shellcheck disable=SC2086  # $flags is intentionally word-split
  if ! cmake -B "$build_dir" -S "$ROOT" $flags "${extra[@]}"; then
    RESULT[$flavor]="FAIL (configure)"
    return 1
  fi
  echo "=== [$flavor] build ==="
  local build_args=()
  if [ "$flavor" = "analyze" ]; then
    # The source gates are self-contained binaries; no library build needed.
    build_args+=("--target" "scholar_lint" "scholar_analyze")
  fi
  if ! cmake --build "$build_dir" -j "$JOBS" "${build_args[@]}"; then
    RESULT[$flavor]="FAIL (build)"
    return 1
  fi
  if [ "$flavor" = "tsa" ]; then
    # Compiling warning-free under -Wthread-safety -Werror *is* the test.
    RESULT[$flavor]="PASS (compile gate)"
    return 0
  fi
  if [ "$flavor" = "fuzz" ]; then
    if ! run_fuzz_budgeted "$build_dir"; then
      RESULT[$flavor]="FAIL (new crasher; copied into fuzz/corpus/*/regression/)"
      return 1
    fi
    RESULT[$flavor]="PASS (${FUZZ_SECONDS}s/harness, no crashers)"
    return 0
  fi
  if [ "$flavor" = "analyze" ]; then
    local sarif="$build_dir/analyze.sarif"
    local sources=()
    while IFS= read -r f; do sources+=("$f"); done \
      < <(find "$ROOT/src" "$ROOT/tools" \( -name '*.cc' -o -name '*.h' \) | sort)
    echo "=== [analyze] scholar_lint over ${#sources[@]} sources ==="
    if ! "$build_dir/tools/scholar_lint" "${sources[@]}"; then
      RESULT[$flavor]="FAIL (scholar_lint violations)"
      return 1
    fi
    # Two timed analyzer runs: cold-serial establishes the reference
    # output and primes the cache; warm-parallel must reproduce it byte
    # for byte. The wall-time ratio is informative, not a gate — on a
    # 1-core container warm-parallel still wins via the cache alone.
    local nproc_jobs
    nproc_jobs=$(nproc 2>/dev/null || echo 2)
    rm -f "$build_dir/analyze.cache"
    echo "=== [analyze] scholar_analyze over ${#sources[@]} sources (cold, --jobs=1) ==="
    local t0 t1 t2
    t0=$(date +%s%N)
    if ! "$build_dir/tools/scholar_analyze" --jobs=1 \
        --baseline="$ROOT/tools/analyze_baseline.txt" \
        --cache="$build_dir/analyze.cache" \
        --sarif="$sarif.cold" "${sources[@]}"; then
      RESULT[$flavor]="FAIL (scholar_analyze findings; SARIF at $sarif.cold)"
      return 1
    fi
    t1=$(date +%s%N)
    echo "=== [analyze] scholar_analyze again (warm cache, --jobs=$nproc_jobs) ==="
    if ! "$build_dir/tools/scholar_analyze" --jobs="$nproc_jobs" \
        --baseline="$ROOT/tools/analyze_baseline.txt" \
        --cache="$build_dir/analyze.cache" \
        --sarif="$sarif" "${sources[@]}"; then
      RESULT[$flavor]="FAIL (scholar_analyze findings; SARIF at $sarif)"
      return 1
    fi
    t2=$(date +%s%N)
    if ! cmp -s "$sarif.cold" "$sarif"; then
      RESULT[$flavor]="FAIL (warm --jobs=$nproc_jobs SARIF differs from cold serial run)"
      return 1
    fi
    rm -f "$sarif.cold"
    local cold_ms=$(( (t1 - t0) / 1000000 ))
    local warm_ms=$(( (t2 - t1) / 1000000 ))
    local ratio
    ratio=$(awk -v c="$cold_ms" -v w="$warm_ms" \
      'BEGIN { if (w > 0) printf "%.2f", c / w; else print "inf" }')
    echo "[analyze] cold serial ${cold_ms}ms, warm --jobs=$nproc_jobs ${warm_ms}ms (${ratio}x)"
    RESULT[$flavor]="PASS (both gates clean; cold ${cold_ms}ms / warm ${warm_ms}ms = ${ratio}x; SARIF at $sarif)"
    return 0
  fi
  if [ "$flavor" = "bench-gate" ]; then
    # rank_scaling --smoke sweeps the whole engine variant matrix and
    # SCHOLAR_CHECKs bit-identity (double variants, every thread count)
    # and the float drift bound internally; a nonzero exit is a contract
    # violation, not a slow machine. serve_scaling --smoke does the same
    # for the serving tier: zero errors / zero dropped responses across
    # mid-run hot swaps and BUSY shedding under a tiny batch bound.
    local gate_work="$build_dir/bench-gate-work"
    mkdir -p "$gate_work"
    echo "=== [bench-gate] rank_scaling --smoke (variant matrix contracts) ==="
    if ! (cd "$gate_work" && "$build_dir/bench/rank_scaling" --smoke); then
      RESULT[$flavor]="FAIL (engine variant contract violated)"
      return 1
    fi
    echo "=== [bench-gate] serve_scaling --smoke (serving-tier contracts) ==="
    if ! (cd "$gate_work" && "$build_dir/bench/serve_scaling" --smoke); then
      RESULT[$flavor]="FAIL (serving-tier contract violated)"
      return 1
    fi
    RESULT[$flavor]="PASS (engine variant + serving-tier contracts)"
    return 0
  fi
  echo "=== [$flavor] test ==="
  if ! ctest --test-dir "$build_dir" "${CTEST_ARGS[@]}"; then
    RESULT[$flavor]="FAIL (tests)"
    return 1
  fi
  RESULT[$flavor]="PASS"
  return 0
}

STATUS=0
for flavor in "${FLAVORS[@]}"; do
  run_flavor "$flavor" || STATUS=1
done

echo
echo "================ analysis matrix ================"
for flavor in "${FLAVORS[@]}"; do
  printf "  %-6s %s\n" "$flavor" "${RESULT[$flavor]}"
done
echo "================================================="
exit $STATUS
