// Smoke tests for the annotated concurrency primitives in util/mutex.h —
// the foundation the thread-safety analysis (and every GUARDED_BY in the
// codebase) rests on. Run under TSan these also certify the wrappers add
// no races of their own.

#include "util/mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace scholar {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // protected by mu
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsHeldState) {
  Mutex mu;
  // Branch on a bool rather than asserting the call directly so the
  // thread-safety analysis can pair each TryLock with its Unlock.
  const bool first = mu.TryLock();
  ASSERT_TRUE(first);
  std::thread other([&] {
    const bool contended = mu.TryLock();
    EXPECT_FALSE(contended);
    if (contended) mu.Unlock();
  });
  other.join();
  if (first) mu.Unlock();
  const bool again = mu.TryLock();
  EXPECT_TRUE(again);
  if (again) mu.Unlock();
}

TEST(MutexTest, CondVarWakesPredicateLoop) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // protected by mu
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(MutexTest, CondVarNotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;  // protected by mu
  int awake = 0;  // protected by mu
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace scholar
