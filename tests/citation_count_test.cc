#include "rank/citation_count.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeTinyGraph;

TEST(CitationCountTest, ScoresEqualInDegrees) {
  CitationGraph g = MakeTinyGraph();
  RankResult r = CitationCountRanker().Rank(g).value();
  ASSERT_EQ(r.scores.size(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(r.scores[v], static_cast<double>(g.InDegree(v)));
  }
  EXPECT_EQ(r.iterations, 0);
}

TEST(CitationCountTest, EmptyGraph) {
  RankResult r = CitationCountRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(AgeCcTest, DividesByAge) {
  // Node 0 (2000, 2 citations), node 2 (2002, 2 citations). now = 2004.
  CitationGraph g = MakeTinyGraph();
  RankResult r = AgeNormalizedCitationCountRanker().Rank(g).value();
  EXPECT_DOUBLE_EQ(r.scores[0], 2.0 / 5.0);  // age 5
  EXPECT_DOUBLE_EQ(r.scores[2], 2.0 / 3.0);  // age 3
  EXPECT_GT(r.scores[2], r.scores[0]);
}

TEST(AgeCcTest, SameYearArticleUsesAgeOne) {
  CitationGraph g = MakeGraph({2004, 2004}, {{1, 0}});
  RankResult r = AgeNormalizedCitationCountRanker().Rank(g).value();
  EXPECT_DOUBLE_EQ(r.scores[0], 1.0);
}

TEST(AgeCcTest, FutureDatedArticleClampedToAgeOne) {
  // Dirty data: article dated beyond now_year must not divide by <= 0.
  CitationGraph g = MakeGraph({2000, 2030}, {{0, 1}});
  AgeNormalizedCitationCountRanker ranker;
  RankContext ctx;
  ctx.graph = &g;
  ctx.now_year = 2005;
  RankResult r = ranker.Rank(ctx).value();
  EXPECT_DOUBLE_EQ(r.scores[1], 1.0);
}

TEST(AgeCcTest, NowYearOverride) {
  CitationGraph g = MakeGraph({2000}, {});
  AgeNormalizedCitationCountRanker ranker;
  RankContext ctx;
  ctx.graph = &g;
  ctx.now_year = 2009;
  RankResult r = ranker.Rank(ctx).value();
  EXPECT_DOUBLE_EQ(r.scores[0], 0.0);  // zero citations stay zero
}

TEST(CitationCountTest, NamesAreStable) {
  EXPECT_EQ(CitationCountRanker().name(), "cc");
  EXPECT_EQ(AgeNormalizedCitationCountRanker().name(), "age_cc");
}

}  // namespace
}  // namespace scholar
