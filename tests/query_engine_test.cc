#include "serve/query_engine.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rank/ranker.h"
#include "test_util.h"
#include "util/string_util.h"

namespace scholar {
namespace serve {
namespace {

using testing_util::MakeTinyGraph;

ScoreSnapshot TinySnapshot(uint64_t id = 1) {
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking;
  ranking.scores = {0.30, 0.10, 0.25, 0.20, 0.15};
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  SnapshotMeta meta;
  meta.snapshot_id = id;
  meta.ranker_name = "twpr";
  meta.corpus_name = "tiny";
  return ScoreSnapshot::Build(graph, ranking, std::move(meta)).value();
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : engine_(&manager_) { manager_.Install(TinySnapshot()); }

  SnapshotManager manager_;
  QueryEngine engine_;
};

TEST(QueryEngineNoSnapshotTest, EverythingButPingErrs) {
  SnapshotManager manager;
  QueryEngine engine(&manager);
  EXPECT_EQ(engine.Execute("ping"), "OK pong");
  EXPECT_EQ(engine.Execute("score 0"), "ERR no snapshot loaded");
  EXPECT_EQ(engine.Execute("top_k 5"), "ERR no snapshot loaded");
}

TEST_F(QueryEngineTest, ScoreRankPercentile) {
  EXPECT_EQ(engine_.Execute("score 0"), "OK 0.3000000000");
  EXPECT_EQ(engine_.Execute("rank 0"), "OK 0");
  EXPECT_EQ(engine_.Execute("rank 1"), "OK 4");
  EXPECT_EQ(engine_.Execute("percentile 0"), "OK 1.0000000000");
  EXPECT_EQ(engine_.Execute("percentile 1"), "OK 0.2000000000");
}

TEST_F(QueryEngineTest, TopKListsBestFirst) {
  EXPECT_EQ(engine_.Execute("top_k 3"),
            "OK 0:0.3000000000 2:0.2500000000 3:0.2000000000");
  // Paged: offset 3 returns the tail; k clamps at the end.
  EXPECT_EQ(engine_.Execute("top_k 10 3"),
            "OK 4:0.1500000000 1:0.1000000000");
  EXPECT_EQ(engine_.Execute("top_k 10 5"), "OK");
  EXPECT_EQ(engine_.Execute("top_k 0"), "OK");
}

TEST_F(QueryEngineTest, NeighborsAreScoreRanked) {
  // Node 0 is cited by 2 and 3; score(2)=0.25 > score(3)=0.20.
  EXPECT_EQ(engine_.Execute("neighbors 0 citers"),
            "OK 2:0.2500000000 3:0.2000000000");
  // Node 4 cites 2 and 3.
  EXPECT_EQ(engine_.Execute("neighbors 4 refs 1"), "OK 2:0.2500000000");
  EXPECT_EQ(engine_.Execute("neighbors 0 refs"), "OK");  // no references
  EXPECT_EQ(engine_.Execute("neighbors 0 sideways"),
            "ERR direction must be citers or refs");
}

TEST_F(QueryEngineTest, InfoReportsSnapshotIdentity) {
  EXPECT_EQ(engine_.Execute("info"),
            "OK nodes=5 edges=6 snapshot_id=1 generation=1 ranker=twpr "
            "corpus=tiny");
}

TEST_F(QueryEngineTest, MalformedRequestsErrWithoutCrashing) {
  EXPECT_EQ(engine_.Execute(""), "ERR empty request");
  EXPECT_EQ(engine_.Execute("   "), "ERR empty request");
  EXPECT_EQ(engine_.Execute("score"), "ERR usage: score <id>");
  EXPECT_EQ(engine_.Execute("score banana"), "ERR bad or unknown id");
  EXPECT_EQ(engine_.Execute("score 5"), "ERR bad or unknown id");
  EXPECT_EQ(engine_.Execute("score -1"), "ERR bad or unknown id");
  EXPECT_EQ(engine_.Execute("top_k"), "ERR usage: top_k <k> [offset]");
  EXPECT_EQ(engine_.Execute("top_k ten"), "ERR bad k");
  EXPECT_EQ(engine_.Execute("warp 9"), "ERR unknown command 'warp'");
}

TEST_F(QueryEngineTest, TopKRespectsMaxK) {
  QueryEngineOptions options;
  options.max_k = 2;
  QueryEngine engine(&manager_, options);
  EXPECT_EQ(engine.Execute("top_k 2"),
            "OK 0:0.3000000000 2:0.2500000000");
  EXPECT_EQ(engine.Execute("top_k 3"), "ERR k exceeds max_k=2");
  // neighbors lists are clamped to max_k instead of erroring.
  EXPECT_EQ(engine.Execute("neighbors 2 citers 5"),
            "OK 3:0.2000000000 4:0.1500000000");
}

TEST_F(QueryEngineTest, TopKCacheHitsAndInvalidatesAcrossSwaps) {
  const std::string first = engine_.Execute("top_k 2");
  EXPECT_EQ(engine_.cache_misses(), 1u);
  EXPECT_EQ(engine_.Execute("top_k 2"), first);
  EXPECT_EQ(engine_.cache_hits(), 1u);

  // A hot swap changes the generation, so the same request recomputes
  // against the new snapshot instead of replaying the cached page.
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking;
  ranking.scores = {0.01, 0.50, 0.02, 0.03, 0.04};  // node 1 now best
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  SnapshotMeta meta;
  meta.snapshot_id = 2;
  manager_.Install(
      ScoreSnapshot::Build(graph, ranking, std::move(meta)).value());

  const std::string swapped = engine_.Execute("top_k 2");
  EXPECT_EQ(swapped, "OK 1:0.5000000000 4:0.0400000000");
  EXPECT_NE(swapped, first);
  EXPECT_EQ(engine_.cache_misses(), 2u);
}

TEST_F(QueryEngineTest, CacheCannotServeStaleAcrossSameIdReinstall) {
  // Streaming republish regression: epochs may reuse metadata (even the
  // snapshot_id), so the top-k cache must be keyed on the manager's
  // generation — never on anything the publisher chooses. If this test
  // fails, a stream epoch could serve the previous epoch's page.
  ASSERT_EQ(engine_.Execute("top_k 1"), "OK 0:0.3000000000");

  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking;
  ranking.scores = {0.05, 0.05, 0.05, 0.05, 0.80};  // node 4 now best
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  SnapshotMeta meta;
  meta.snapshot_id = 1;  // SAME id as the installed snapshot
  manager_.Install(
      ScoreSnapshot::Build(graph, ranking, std::move(meta)).value());

  EXPECT_EQ(engine_.Execute("top_k 1"), "OK 4:0.8000000000");
}

TEST_F(QueryEngineTest, CacheCannotServeStaleAcrossGrowingSwaps) {
  // The streaming pipeline's swaps GROW the graph. Interleave queries with
  // three growing installs and verify every answer reflects the freshest
  // snapshot: a stale cached page would surface as yesterday's top-k or an
  // unknown newborn id.
  ASSERT_EQ(engine_.Execute("top_k 2"),
            "OK 0:0.3000000000 2:0.2500000000");
  size_t expected_misses = engine_.cache_misses();
  std::vector<Year> years = {2000, 2001, 2002, 2003, 2004};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {2, 0}, {2, 1}, {3, 0}, {3, 2}, {4, 2}, {4, 3}};
  std::vector<double> scores = {0.30, 0.10, 0.25, 0.20, 0.15};
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const NodeId newborn = static_cast<NodeId>(years.size());
    years.push_back(static_cast<Year>(2004 + epoch));
    edges.push_back({newborn, 0});
    scores.push_back(0.30 + 0.10 * static_cast<double>(epoch));  // new best
    RankingOutput ranking;
    ranking.scores = scores;
    ranking.ranks = ScoresToRanks(scores);
    ranking.percentiles = RankPercentiles(scores);
    SnapshotMeta meta;
    meta.snapshot_id = epoch;
    manager_.Install(ScoreSnapshot::Build(testing_util::MakeGraph(years, edges),
                                          ranking, std::move(meta))
                         .value());

    // The newborn article answers immediately and tops the ranking.
    EXPECT_EQ(engine_.Execute("rank " + std::to_string(newborn)), "OK 0")
        << "epoch " << epoch;
    const std::string top = engine_.Execute("top_k 1");
    EXPECT_EQ(top.substr(0, top.find(':')),
              "OK " + std::to_string(newborn))
        << "epoch " << epoch;
    EXPECT_EQ(engine_.cache_misses(), ++expected_misses)
        << "epoch " << epoch << ": top_k page served from a stale cache";
    // Repeat within the same generation: now it may (and should) cache.
    EXPECT_EQ(engine_.Execute("top_k 1"), top);
    EXPECT_EQ(engine_.cache_misses(), expected_misses);
  }
}

TEST_F(QueryEngineTest, ReloadHotSwapsFromFile) {
  const std::string path = ::testing::TempDir() + "/engine_reload.bin";
  ASSERT_TRUE(TinySnapshot(99).WriteToFile(path).ok());
  EXPECT_EQ(engine_.Execute("reload " + path), "OK generation=2");
  const std::string info = engine_.Execute("info");
  EXPECT_NE(info.find("snapshot_id=99"), std::string::npos) << info;

  // Failed reloads keep serving the old snapshot.
  const std::string err = engine_.Execute("reload /nonexistent/x.bin");
  EXPECT_EQ(err.rfind("ERR ", 0), 0u) << err;
  EXPECT_NE(engine_.Execute("info").find("snapshot_id=99"),
            std::string::npos);
}

TEST_F(QueryEngineTest, ReloadCanBeDisabled) {
  QueryEngineOptions options;
  options.allow_reload = false;
  QueryEngine engine(&manager_, options);
  EXPECT_EQ(engine.Execute("reload /tmp/x.bin"), "ERR reload disabled");
}

TEST_F(QueryEngineTest, TopKMergeMatchesPrecomputedOrderBitForBit) {
  // The scatter-gather path must render exactly the bytes of the
  // order-slice fast path, across shard routings and page shapes — on a
  // snapshot with score ties so the id tie-break is load-bearing.
  CitationGraph graph = testing_util::MakeRandomGraph(64, 2.0, 2000, 8, 11);
  RankingOutput ranking;
  ranking.scores.resize(64);
  for (size_t i = 0; i < 64; ++i) {
    ranking.scores[i] = static_cast<double>((i * 7) % 16) / 16.0;  // many ties
  }
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  SnapshotMeta meta;
  meta.snapshot_id = 3;
  manager_.Install(
      ScoreSnapshot::Build(graph, ranking, std::move(meta)).value());

  QueryEngineOptions sharded_options;
  sharded_options.topk_shards = 5;  // route plain top_k through the merge
  QueryEngine sharded(&manager_, sharded_options);
  for (const std::string page :
       {"1", "3", "64", "1000", "3 0", "3 10", "5 62", "5 64", "5 9999"}) {
    const std::string fast = engine_.Execute("top_k " + page);
    EXPECT_EQ(engine_.Execute("top_k_merge " + page), fast) << page;
    EXPECT_EQ(sharded.Execute("top_k " + page), fast) << page;
    EXPECT_EQ(sharded.Execute("top_k_merge " + page), fast) << page;
  }
}

TEST_F(QueryEngineTest, PagedTopKOffsetCannotWrapAround) {
  // Regression: offset + k near the integer ceiling must clamp to an empty
  // page, never wrap around to serve the head of the ranking. ParseSize
  // rejects anything above INT64_MAX, so the sum stays below 2^64.
  EXPECT_EQ(engine_.Execute("top_k 10 9223372036854775807"), "OK");
  EXPECT_EQ(engine_.Execute("top_k_merge 10 9223372036854775807"), "OK");
  EXPECT_EQ(engine_.Execute("top_k 10 18446744073709551615"),
            "ERR bad offset");
  EXPECT_EQ(engine_.Execute("top_k 10 18446744073709551606"),
            "ERR bad offset");  // would wrap exactly to 0 if parsed raw
}

TEST_F(QueryEngineTest, CacheKeySeparatesKFromOffset) {
  // (k=2, offset=0) and (k=0, offset=2) must hit different cache entries:
  // a key that concatenated the bounds ambiguously would alias them.
  EXPECT_EQ(engine_.Execute("top_k 2 0"),
            "OK 0:0.3000000000 2:0.2500000000");
  EXPECT_EQ(engine_.Execute("top_k 0 2"), "OK");
  EXPECT_EQ(engine_.cache_misses(), 2u);
  // Same page again: served from cache, same bytes.
  EXPECT_EQ(engine_.Execute("top_k 2 0"),
            "OK 0:0.3000000000 2:0.2500000000");
  EXPECT_EQ(engine_.cache_hits(), 1u);
}

/// Satellite regression for per-worker replica serving: N threads, each
/// owning a private QueryEngine replica over one shared SnapshotManager,
/// hammer queries while the main thread hot-swaps growing snapshots. Every
/// response must come from a fully installed generation — observable as a
/// nondecreasing best score per thread (each install strictly raises it)
/// and zero errors.
void HammerReplicasDuringGrowingSwaps(size_t num_threads) {
  SnapshotManager manager;
  std::vector<Year> years = {2000, 2001, 2002, 2003, 2004};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {2, 0}, {2, 1}, {3, 0}, {3, 2}, {4, 2}, {4, 3}};
  std::vector<double> scores = {0.30, 0.10, 0.25, 0.20, 0.15};
  auto install = [&](uint64_t epoch) {
    RankingOutput ranking;
    ranking.scores = scores;
    ranking.ranks = ScoresToRanks(scores);
    ranking.percentiles = RankPercentiles(scores);
    SnapshotMeta meta;
    meta.snapshot_id = epoch;
    manager.Install(ScoreSnapshot::Build(testing_util::MakeGraph(years, edges),
                                         ranking, std::move(meta))
                        .value());
  };
  install(0);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> responses{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      QueryEngine replica(&manager);  // per-thread replica, private cache
      double last_best = 0.0;
      while (!done.load(std::memory_order_acquire)) {
        const std::string top = replica.Execute("top_k 1");
        responses.fetch_add(1, std::memory_order_relaxed);
        const size_t colon = top.find(':');
        if (top.rfind("OK ", 0) != 0 || colon == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
        const double best = std::stod(top.substr(colon + 1));
        if (best + 1e-12 < last_best) {
          failures.fetch_add(1);  // served a page from a superseded epoch
          return;
        }
        last_best = best;
      }
    });
  }

  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    const NodeId newborn = static_cast<NodeId>(years.size());
    years.push_back(static_cast<Year>(2004 + epoch));
    edges.push_back({newborn, 0});
    scores.push_back(0.30 + 0.10 * static_cast<double>(epoch));  // new best
    install(epoch);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << num_threads << " threads";
  EXPECT_GT(responses.load(), 0u);
}

TEST(QueryEngineReplicaTest, ConcurrentGrowingSwapsWith2Threads) {
  HammerReplicasDuringGrowingSwaps(2);
}

TEST(QueryEngineReplicaTest, ConcurrentGrowingSwapsWith4Threads) {
  HammerReplicasDuringGrowingSwaps(4);
}

TEST(QueryEngineReplicaTest, ConcurrentGrowingSwapsWith8Threads) {
  HammerReplicasDuringGrowingSwaps(8);
}

}  // namespace
}  // namespace serve
}  // namespace scholar
