#include "rank/sceas.h"

#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(SceasTest, ScoresSumToOne) {
  RankResult r = SceasRanker().Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(SceasTest, SingleCitationMatchesClosedForm) {
  // 1 -> 0: s(0) = (0 + b)/(a * 1) = b/a, s(1) = 0.
  CitationGraph g = MakeGraph({2000, 2001}, {{1, 0}});
  SceasOptions o;
  o.a = 2.0;
  o.b = 1.0;
  RankResult r = SceasRanker(o).Rank(g).value();
  // After normalization node 0 holds everything.
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
  EXPECT_NEAR(r.scores[1], 0.0, 1e-12);
}

TEST(SceasTest, ChainClosedForm) {
  // 2 -> 1 -> 0 with a=2, b=1:
  //   s(1) = (s(2) + 1)/2 = 1/2
  //   s(0) = (s(1) + 1)/2 = 3/4
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {{1, 0}, {2, 1}});
  SceasOptions o;
  o.a = 2.0;
  o.b = 1.0;
  o.tolerance = 1e-14;
  RankResult r = SceasRanker(o).Rank(g).value();
  const double total = 0.75 + 0.5;
  EXPECT_NEAR(r.scores[0], 0.75 / total, 1e-9);
  EXPECT_NEAR(r.scores[1], 0.5 / total, 1e-9);
}

TEST(SceasTest, NewArticleCreditFasterThanPageRank) {
  // SceasRank's selling point: a citation from an uncited article still
  // carries the base credit b immediately.
  CitationGraph g = MakeGraph({2000, 2001}, {{1, 0}});
  SceasOptions o;
  o.max_iterations = 1;  // one round is enough for direct credit
  RankResult r = SceasRanker(o).Rank(g).value();
  EXPECT_GT(r.scores[0], 0.0);
}

TEST(SceasTest, RejectsBadOptions) {
  SceasOptions o;
  o.a = 1.0;
  EXPECT_TRUE(
      SceasRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
  o = SceasOptions();
  o.b = -1.0;
  EXPECT_TRUE(
      SceasRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
  o = SceasOptions();
  o.max_iterations = 0;
  EXPECT_TRUE(
      SceasRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
}

TEST(SceasTest, DeterministicAndConvergent) {
  CitationGraph g = MakeRandomGraph(300, 4, 1990, 10, 5);
  RankResult a = SceasRanker().Rank(g).value();
  RankResult b = SceasRanker().Rank(g).value();
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_TRUE(a.converged);
}

TEST(SceasTest, EmptyGraph) {
  RankResult r = SceasRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

}  // namespace
}  // namespace scholar
