#include "ensemble/time_partitioner.h"

#include <algorithm>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;

TEST(TimePartitionerTest, RejectsEmptyGraphAndBadK) {
  EXPECT_TRUE(ComputeSliceBoundaries(CitationGraph(), 4,
                                     PartitionStrategy::kEqualSpan)
                  .status()
                  .IsInvalidArgument());
  CitationGraph g = MakeGraph({2000, 2001}, {});
  EXPECT_TRUE(ComputeSliceBoundaries(g, 0, PartitionStrategy::kEqualSpan)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimePartitionerTest, SingleSliceIsMaxYear) {
  CitationGraph g = MakeGraph({2000, 2003, 2007}, {});
  for (auto strategy :
       {PartitionStrategy::kEqualSpan, PartitionStrategy::kEqualCount}) {
    auto b = ComputeSliceBoundaries(g, 1, strategy).value();
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], 2007);
  }
}

TEST(TimePartitionerTest, EqualSpanSplitsYears) {
  // Years 2000..2007 (8 years), 4 slices -> boundaries 2001,2003,2005,2007.
  std::vector<Year> years;
  for (Year y = 2000; y <= 2007; ++y) years.push_back(y);
  CitationGraph g = MakeGraph(years, {});
  auto b = ComputeSliceBoundaries(g, 4, PartitionStrategy::kEqualSpan).value();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 2001);
  EXPECT_EQ(b[1], 2003);
  EXPECT_EQ(b[2], 2005);
  EXPECT_EQ(b[3], 2007);
}

TEST(TimePartitionerTest, BoundariesAreStrictlyIncreasingAndEndAtMax) {
  CitationGraph g = MakeRandomGraph(500, 3, 1980, 25, 3);
  for (int k : {1, 2, 3, 5, 8, 13}) {
    for (auto strategy :
         {PartitionStrategy::kEqualSpan, PartitionStrategy::kEqualCount}) {
      auto b = ComputeSliceBoundaries(g, k, strategy).value();
      ASSERT_FALSE(b.empty());
      EXPECT_LE(b.size(), static_cast<size_t>(k));
      EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
      EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) == b.end());
      EXPECT_EQ(b.back(), g.max_year());
    }
  }
}

TEST(TimePartitionerTest, EqualCountBalancesArticles) {
  // 100 articles in 2000, 100 in 2001, ..., 100 in 2009.
  GraphBuilder builder;
  for (Year y = 2000; y < 2010; ++y) builder.AddNodes(100, y);
  CitationGraph g = std::move(builder).Build().value();
  auto b =
      ComputeSliceBoundaries(g, 5, PartitionStrategy::kEqualCount).value();
  ASSERT_EQ(b.size(), 5u);
  // Every slice should add exactly two years' worth.
  EXPECT_EQ(b[0], 2001);
  EXPECT_EQ(b[1], 2003);
  EXPECT_EQ(b[4], 2009);
}

TEST(TimePartitionerTest, EqualCountHandlesSkewedGrowth) {
  // 10 old articles, 990 in the final year: equal-count collapses most
  // boundaries into the last year, deduplication keeps them unique.
  GraphBuilder builder;
  builder.AddNodes(10, 1990);
  builder.AddNodes(990, 2010);
  CitationGraph g = std::move(builder).Build().value();
  auto b =
      ComputeSliceBoundaries(g, 8, PartitionStrategy::kEqualCount).value();
  EXPECT_LE(b.size(), 2u);
  EXPECT_EQ(b.back(), 2010);
}

TEST(TimePartitionerTest, MoreSlicesThanYearsDegradesGracefully) {
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {});
  auto b =
      ComputeSliceBoundaries(g, 10, PartitionStrategy::kEqualSpan).value();
  EXPECT_LE(b.size(), 3u);
  EXPECT_EQ(b.back(), 2002);
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) == b.end());
}

TEST(TimePartitionerTest, SingleYearGraph) {
  CitationGraph g = MakeGraph({2005, 2005, 2005}, {});
  for (auto strategy :
       {PartitionStrategy::kEqualSpan, PartitionStrategy::kEqualCount}) {
    auto b = ComputeSliceBoundaries(g, 4, strategy).value();
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0], 2005);
  }
}

}  // namespace
}  // namespace scholar
