#include "rank/futurerank.h"

#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeTinyGraph;

PaperAuthors TinyAuthors() {
  // 5 papers; author 0 on papers 0 & 2, others solo.
  return PaperAuthors::FromLists({{0}, {1}, {0}, {2}, {3}});
}

TEST(FutureRankTest, RequiresAuthorData) {
  CitationGraph g = MakeTinyGraph();
  FutureRankRanker ranker;
  EXPECT_TRUE(ranker.Rank(g).status().IsInvalidArgument());
}

TEST(FutureRankTest, ScoresFormDistribution) {
  CitationGraph g = MakeTinyGraph();
  PaperAuthors pa = TinyAuthors();
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  RankResult r = FutureRankRanker().Rank(ctx).value();
  ASSERT_EQ(r.scores.size(), 5u);
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
  EXPECT_TRUE(r.converged);
  for (double s : r.scores) EXPECT_GT(s, 0.0);
}

TEST(FutureRankTest, RecencyTermFavorsNewArticles) {
  // Identical structure except publication year.
  CitationGraph g = MakeGraph({1990, 2010}, {});
  PaperAuthors pa = PaperAuthors::FromLists({{0}, {1}});
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  FutureRankOptions o;
  o.alpha = 0.0;
  o.beta = 0.0;
  o.gamma = 0.9;
  RankResult r = FutureRankRanker(o).Rank(ctx).value();
  EXPECT_GT(r.scores[1], r.scores[0]);
}

TEST(FutureRankTest, ProlificAuthorBoostsPaper) {
  // Papers 0..3 cited equally (not at all). Author 0 writes papers 0,1,2;
  // author 1 writes only paper 3. With the author term dominating, paper 3
  // cannot beat the coauthored ones once author 0 accumulates authority
  // from three papers.
  CitationGraph g = MakeGraph({2000, 2000, 2000, 2000}, {});
  PaperAuthors pa = PaperAuthors::FromLists({{0}, {0}, {0}, {1}});
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  FutureRankOptions o;
  o.alpha = 0.0;
  o.beta = 0.8;
  o.gamma = 0.0;
  RankResult r = FutureRankRanker(o).Rank(ctx).value();
  // Author 0 holds 3/4 of the paper mass but splits it over 3 papers:
  // each of papers 0-2 gets authority 1/4, paper 3 gets 1/4 too — equal.
  // Make author 0's papers actually better-connected: add citations.
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);

  // Now give paper 0 a citation so author 0 gains authority; paper 2
  // (same author, uncited) must now beat paper 3 (uncited, weak author).
  CitationGraph g2 =
      MakeGraph({2000, 2000, 2000, 2000, 2001}, {{4, 0}});
  PaperAuthors pa2 = PaperAuthors::FromLists({{0}, {0}, {0}, {1}, {2}});
  RankContext ctx2;
  ctx2.graph = &g2;
  ctx2.authors = &pa2;
  FutureRankOptions o2;
  o2.alpha = 0.2;
  o2.beta = 0.6;
  o2.gamma = 0.0;
  RankResult r2 = FutureRankRanker(o2).Rank(ctx2).value();
  EXPECT_GT(r2.scores[2], r2.scores[3]);
}

TEST(FutureRankTest, CitationStructureMatters) {
  // alpha-only FutureRank behaves like PageRank: cited paper wins.
  CitationGraph g = MakeGraph({2000, 2000, 2001}, {{2, 0}});
  PaperAuthors pa = PaperAuthors::FromLists({{0}, {1}, {2}});
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  FutureRankOptions o;
  o.alpha = 0.85;
  o.beta = 0.0;
  o.gamma = 0.0;
  RankResult r = FutureRankRanker(o).Rank(ctx).value();
  EXPECT_GT(r.scores[0], r.scores[1]);
}

TEST(FutureRankTest, RejectsBadWeights) {
  CitationGraph g = MakeTinyGraph();
  PaperAuthors pa = TinyAuthors();
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  FutureRankOptions o;
  o.alpha = 0.6;
  o.beta = 0.3;
  o.gamma = 0.2;  // sums to 1.1
  EXPECT_TRUE(FutureRankRanker(o).Rank(ctx).status().IsInvalidArgument());
  o = FutureRankOptions();
  o.alpha = -0.1;
  EXPECT_TRUE(FutureRankRanker(o).Rank(ctx).status().IsInvalidArgument());
  o = FutureRankOptions();
  o.max_iterations = 0;
  EXPECT_TRUE(FutureRankRanker(o).Rank(ctx).status().IsInvalidArgument());
}

TEST(FutureRankTest, AuthorShapeMismatchRejected) {
  CitationGraph g = MakeTinyGraph();
  PaperAuthors pa = PaperAuthors::FromLists({{0}});  // 1 paper != 5
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  EXPECT_TRUE(FutureRankRanker().Rank(ctx).status().IsInvalidArgument());
}

TEST(FutureRankTest, DeterministicAcrossRuns) {
  CitationGraph g = MakeTinyGraph();
  PaperAuthors pa = TinyAuthors();
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &pa;
  RankResult a = FutureRankRanker().Rank(ctx).value();
  RankResult b = FutureRankRanker().Rank(ctx).value();
  EXPECT_EQ(a.scores, b.scores);
}

}  // namespace
}  // namespace scholar
