#ifndef SCHOLARRANK_TESTS_TEST_UTIL_H_
#define SCHOLARRANK_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "graph/citation_graph.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace scholar {
namespace testing_util {

/// Builds a graph from explicit (year list, edge list). Aborts on invalid
/// input — tests construct valid fixtures.
inline CitationGraph MakeGraph(
    const std::vector<Year>& years,
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder;
  for (Year y : years) builder.AddNode(y);
  SCHOLAR_CHECK_OK(builder.AddEdges(edges));
  Result<CitationGraph> g = std::move(builder).Build();
  SCHOLAR_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Random citation-style DAG: node ids ascend with year; each node cites
/// `avg_degree` earlier nodes on average (uniformly chosen).
inline CitationGraph MakeRandomGraph(size_t n, double avg_degree,
                                     Year start_year, int num_years,
                                     uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    Year y = start_year +
             static_cast<Year>(i * static_cast<size_t>(num_years) / n);
    builder.AddNode(y);
  }
  for (NodeId u = 1; u < n; ++u) {
    size_t degree = rng.NextBounded(static_cast<uint64_t>(2 * avg_degree) + 1);
    for (size_t d = 0; d < degree; ++d) {
      NodeId v = static_cast<NodeId>(rng.NextBounded(u));
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
    }
  }
  Result<CitationGraph> g = std::move(builder).Build();
  SCHOLAR_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// Random graph whose node ids are NOT year-sorted: years are assigned
/// independently of id, so TemporalCsr must take its permutation path
/// (MakeRandomGraph's graphs are year-monotone and hit the identity fast
/// path instead). A few time-travel citations are kept deliberately —
/// real datasets contain them and snapshots must agree on them too.
inline CitationGraph MakeShuffledYearGraph(size_t n, double avg_degree,
                                           Year start_year, int num_years,
                                           uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.AddNode(start_year +
                    static_cast<Year>(rng.NextBounded(
                        static_cast<uint64_t>(num_years))));
  }
  for (NodeId u = 0; u < n; ++u) {
    size_t degree = rng.NextBounded(static_cast<uint64_t>(2 * avg_degree) + 1);
    for (size_t d = 0; d < degree; ++d) {
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v == u) continue;
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
    }
  }
  Result<CitationGraph> g = std::move(builder).Build();
  SCHOLAR_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

/// The 5-node teaching graph used across several tests:
///
///   years:  0:2000  1:2001  2:2002  3:2003  4:2004
///   edges:  2->0, 2->1, 3->0, 3->2, 4->2, 4->3   (u cites v)
inline CitationGraph MakeTinyGraph() {
  return MakeGraph({2000, 2001, 2002, 2003, 2004},
                   {{2, 0}, {2, 1}, {3, 0}, {3, 2}, {4, 2}, {4, 3}});
}

}  // namespace testing_util
}  // namespace scholar

#endif  // SCHOLARRANK_TESTS_TEST_UTIL_H_
