#include "serve/topk_merge.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace scholar {
namespace serve {
namespace {

/// Reference order: full sort under the serving convention (score
/// descending, id ascending on ties) — the same order the snapshot's
/// precomputed index uses.
std::vector<ScoredId> OracleOrder(const std::vector<double>& scores) {
  std::vector<ScoredId> all;
  for (NodeId id = 0; id < scores.size(); ++id) {
    all.push_back({scores[id], id});
  }
  std::sort(all.begin(), all.end(), RanksBefore);
  return all;
}

/// Scores with deliberate duplicates so the id tie-break is exercised.
std::vector<double> TiedScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scores(n);
  for (double& s : scores) {
    s = static_cast<double>(rng.NextBounded(n / 4 + 1)) / 8.0;
  }
  return scores;
}

TEST(ShardTopKTest, ReturnsBestFirstWithinRange) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.2, 0.7};
  // Whole range, k=3: ties on 0.9 break toward the smaller id.
  std::vector<ScoredId> top = ShardTopK(scores, 0, 6, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 1u);
  EXPECT_EQ(top[1].id, 3u);
  EXPECT_EQ(top[2].id, 5u);
  // Sub-range excludes the global best.
  top = ShardTopK(scores, 2, 6, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 3u);
  EXPECT_EQ(top[1].id, 5u);
}

TEST(ShardTopKTest, KLargerThanRangeReturnsWholeRangeSorted) {
  const std::vector<double> scores = {0.3, 0.1, 0.2};
  std::vector<ScoredId> top = ShardTopK(scores, 0, 3, 100);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[1].id, 2u);
  EXPECT_EQ(top[2].id, 1u);
  EXPECT_TRUE(ShardTopK(scores, 0, 3, 0).empty());
  EXPECT_TRUE(ShardTopK(scores, 2, 2, 5).empty());
}

TEST(MergeTopKTest, InterleavesSortedRuns) {
  const std::vector<std::vector<ScoredId>> partials = {
      {{0.9, 10}, {0.4, 11}},
      {{0.8, 3}, {0.6, 4}, {0.1, 5}},
      {},
      {{0.9, 2}},
  };
  std::vector<ScoredId> merged = MergeTopK(partials, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 2u);   // 0.9 tie: id 2 before id 10
  EXPECT_EQ(merged[1].id, 10u);
  EXPECT_EQ(merged[2].id, 3u);
  EXPECT_EQ(merged[3].id, 4u);
  EXPECT_TRUE(MergeTopK(partials, 0).empty());
  EXPECT_EQ(MergeTopK(partials, 100).size(), 6u);
}

TEST(ScatterGatherTest, MatchesOracleAcrossShardCountsAndPages) {
  const std::vector<double> scores = TiedScores(257, /*seed=*/7);
  const std::vector<ScoredId> oracle = OracleOrder(scores);
  for (size_t shards : {1u, 2u, 5u, 16u, 300u}) {
    for (size_t offset : {0u, 1u, 100u, 250u, 257u, 400u}) {
      for (size_t k : {0u, 1u, 7u, 64u, 1000u}) {
        const std::vector<ScoredId> page =
            ScatterGatherTopPage(scores, shards, offset, k);
        const size_t expect =
            offset >= oracle.size() ? 0
                                    : std::min(k, oracle.size() - offset);
        ASSERT_EQ(page.size(), expect)
            << "shards=" << shards << " offset=" << offset << " k=" << k;
        for (size_t i = 0; i < page.size(); ++i) {
          EXPECT_EQ(page[i].id, oracle[offset + i].id)
              << "shards=" << shards << " offset=" << offset << " k=" << k
              << " i=" << i;
          EXPECT_EQ(page[i].score, oracle[offset + i].score);
        }
      }
    }
  }
}

TEST(ScatterGatherTest, EmptyScoresYieldEmptyPages) {
  const std::vector<double> none;
  EXPECT_TRUE(ScatterGatherTopPage(none, 4, 0, 10).empty());
  EXPECT_TRUE(ScatterGatherTopPage(none, 0, 0, 10).empty());
}

}  // namespace
}  // namespace serve
}  // namespace scholar
