#include "util/parallel_for.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(ResolveThreadsTest, ZeroMeansHardwareConcurrency) {
  const size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ResolveThreads(0), hw == 0 ? 1u : hw);
}

TEST(ResolveThreadsTest, ExplicitCountsPassThrough) {
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
  // Negative requests degrade to serial rather than wrapping around.
  EXPECT_EQ(ResolveThreads(-3), 1u);
}

TEST(ChunkCountTest, GeometryIsPureInSizeAndGrain) {
  EXPECT_EQ(ChunkCount(0, 16), 0u);
  EXPECT_EQ(ChunkCount(1, 16), 1u);
  EXPECT_EQ(ChunkCount(16, 16), 1u);
  EXPECT_EQ(ChunkCount(17, 16), 2u);
  EXPECT_EQ(ChunkCount(32, 16), 2u);
  EXPECT_EQ(ChunkCount(100, 1), 100u);
  // Degenerate grain is coerced to 1, never a division by zero.
  EXPECT_EQ(ChunkCount(5, 0), 5u);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 16, [&](size_t, size_t) { calls.fetch_add(1); });
  ParallelFor(nullptr, 0, 16, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  size_t seen_begin = 99, seen_end = 0;
  ParallelFor(&pool, 5, 1000, [&](size_t begin, size_t end) {
    calls.fetch_add(1);
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, 5u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const size_t n = 10'007;  // prime: no grain divides it evenly
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, n, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NullPoolRunsSeriallyInOrder) {
  std::vector<size_t> begins;
  ParallelFor(nullptr, 100, 32, [&](size_t begin, size_t end) {
    begins.push_back(begin);
    EXPECT_LE(end, 100u);
  });
  // Serial fallback sweeps chunks in ascending order on the caller.
  ASSERT_EQ(begins.size(), 4u);
  EXPECT_EQ(begins, (std::vector<size_t>{0, 32, 64, 96}));
}

TEST(ParallelForChunksTest, ChunkIndicesMatchGeometry) {
  ThreadPool pool(2);
  const size_t n = 1000, grain = 300;
  const size_t chunks = ChunkCount(n, grain);
  std::vector<std::pair<size_t, size_t>> ranges(chunks);
  ParallelForChunks(&pool, n, grain,
                    [&](size_t chunk, size_t begin, size_t end) {
    ranges[chunk] = {begin, end};
  });
  for (size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, c * grain);
    EXPECT_EQ(ranges[c].second, std::min(n, (c + 1) * grain));
  }
}

TEST(ParallelForChunksTest, OrderedPartialSumsAreThreadCountInvariant) {
  const size_t n = 4096 + 37, grain = 256;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 1.0 / (1.0 + static_cast<double>(i));
  auto reduce = [&](ThreadPool* pool) {
    const size_t chunks = ChunkCount(n, grain);
    std::vector<double> partial(chunks, 0.0);
    ParallelForChunks(pool, n, grain,
                      [&](size_t chunk, size_t begin, size_t end) {
      double acc = 0.0;
      for (size_t i = begin; i < end; ++i) acc += values[i];
      partial[chunk] = acc;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double serial = reduce(nullptr);
  ThreadPool two(2), eight(8);
  // Bitwise equality: the chunk geometry and combine order are fixed.
  EXPECT_EQ(serial, reduce(&two));
  EXPECT_EQ(serial, reduce(&eight));
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 1000, 10, [&](size_t begin, size_t) {
        if (begin >= 500) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool is still usable after a failed loop.
  std::atomic<int> calls{0};
  ParallelFor(&pool, 100, 10, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelForTest, PropagatesExceptionFromSerialFallback) {
  EXPECT_THROW(ParallelFor(nullptr, 10, 100,
                           [&](size_t, size_t) { throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(ParallelForTest, NestedLoopsDoNotDeadlock) {
  // The caller participates in its own loop, so an inner ParallelFor issued
  // from a worker always makes progress even when the pool is saturated.
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  ParallelFor(&pool, 8, 1, [&](size_t, size_t) {
    ParallelFor(&pool, 4, 1,
                [&](size_t, size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 32);
}

}  // namespace
}  // namespace scholar
