#include "serve/snapshot_manager.h"

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rank/ranker.h"
#include "test_util.h"

namespace scholar {
namespace serve {
namespace {

using testing_util::MakeTinyGraph;

/// A snapshot whose every score equals `value`, so a reader can tell which
/// install it is looking at from any element.
ScoreSnapshot UniformSnapshot(double value, uint64_t id) {
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking;
  ranking.scores.assign(graph.num_nodes(), value);
  ranking.ranks = ScoresToRanks(ranking.scores);
  ranking.percentiles = RankPercentiles(ranking.scores);
  SnapshotMeta meta;
  meta.snapshot_id = id;
  meta.ranker_name = "uniform";
  meta.corpus_name = "tiny";
  return ScoreSnapshot::Build(graph, ranking, std::move(meta)).value();
}

TEST(SnapshotManagerTest, StartsEmpty) {
  SnapshotManager manager;
  EXPECT_EQ(manager.Current(), nullptr);
  EXPECT_EQ(manager.generation(), 0u);
}

TEST(SnapshotManagerTest, InstallPublishesAndBumpsGeneration) {
  SnapshotManager manager;
  manager.Install(UniformSnapshot(1.0, 11));
  auto first = manager.Current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(first->snapshot.meta().snapshot_id, 11u);

  manager.Install(UniformSnapshot(2.0, 22));
  auto second = manager.Current();
  EXPECT_EQ(second->generation, 2u);
  EXPECT_EQ(second->snapshot.meta().snapshot_id, 22u);
  // The old handle is still alive and unchanged — readers drain at their
  // own pace.
  EXPECT_EQ(first->snapshot.meta().snapshot_id, 11u);
}

TEST(SnapshotManagerTest, LoadFileInstallsValidSnapshot) {
  const std::string path = ::testing::TempDir() + "/manager_load.bin";
  ASSERT_TRUE(UniformSnapshot(3.0, 33).WriteToFile(path).ok());
  SnapshotManager manager;
  ASSERT_TRUE(manager.LoadFile(path).ok());
  ASSERT_NE(manager.Current(), nullptr);
  EXPECT_EQ(manager.Current()->snapshot.meta().snapshot_id, 33u);
}

TEST(SnapshotManagerTest, CorruptFileLeavesLiveSnapshotUntouched) {
  const std::string good_path = ::testing::TempDir() + "/manager_good.bin";
  const std::string bad_path = ::testing::TempDir() + "/manager_bad.bin";
  ASSERT_TRUE(UniformSnapshot(1.0, 44).WriteToFile(good_path).ok());
  {
    std::ofstream bad(bad_path, std::ios::binary);
    bad << "SRSS garbage that is definitely not a full snapshot";
  }
  SnapshotManager manager;
  ASSERT_TRUE(manager.LoadFile(good_path).ok());

  Status status = manager.LoadFile(bad_path);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  // The failed load must not have swapped anything.
  ASSERT_NE(manager.Current(), nullptr);
  EXPECT_EQ(manager.Current()->snapshot.meta().snapshot_id, 44u);
  EXPECT_EQ(manager.generation(), 1u);

  EXPECT_TRUE(manager.LoadFile("/nonexistent/snap.bin").IsIOError());
  EXPECT_EQ(manager.generation(), 1u);
}

TEST(SnapshotManagerTest, HotSwapUnderConcurrentReaders) {
  SnapshotManager manager;
  manager.Install(UniformSnapshot(0.0, 0));

  constexpr int kReaders = 8;
  constexpr int kSwaps = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observations{0};
  std::atomic<bool> torn_read{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto live = manager.Current();
        ASSERT_NE(live, nullptr);
        const ScoreSnapshot& snap = live->snapshot;
        // Internal consistency: every element of a published snapshot
        // agrees with its snapshot_id. A torn swap would mix values.
        const double expected =
            static_cast<double>(snap.meta().snapshot_id);
        for (NodeId v = 0; v < snap.num_nodes(); ++v) {
          if (snap.score(v) != expected) {
            torn_read.store(true, std::memory_order_release);
          }
        }
        // The precomputed order must stay a valid permutation too.
        if (snap.Top(snap.num_nodes()).size() != snap.num_nodes()) {
          torn_read.store(true, std::memory_order_release);
        }
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (uint64_t swap = 1; swap <= kSwaps; ++swap) {
    manager.Install(UniformSnapshot(static_cast<double>(swap), swap));
  }
  // Let readers observe the final state a little before stopping.
  while (observations.load(std::memory_order_relaxed) < kSwaps) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(torn_read.load());
  EXPECT_EQ(manager.generation(), static_cast<uint64_t>(kSwaps) + 1);
  EXPECT_EQ(manager.Current()->snapshot.meta().snapshot_id,
            static_cast<uint64_t>(kSwaps));
  EXPECT_GT(observations.load(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace scholar
