/// End-to-end pipeline tests: generate a realistic corpus, run the paper's
/// method and the baselines, and check the paper's qualitative claims at
/// small scale (the bench harness re-checks them at full scale).
#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/scholar_ranker.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/benchmark_sets.h"
#include "eval/cohort.h"
#include "graph/graph_io.h"

namespace scholar {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticOptions o = AMinerLikeProfile(6000, /*seed=*/99);
    corpus_ = new Corpus(GenerateSyntheticCorpus(o, "integration").value());
    EvalSuiteOptions so;
    so.num_pairs = 20000;
    suite_ = new EvalSuite(BuildEvalSuite(*corpus_, so).value());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete suite_;
    corpus_ = nullptr;
    suite_ = nullptr;
  }

  static RankerEvaluation Evaluate(const std::string& name) {
    auto ranker = MakeRanker(name).value();
    return EvaluateRanker(*corpus_, *ranker, *suite_).value();
  }

  static Corpus* corpus_;
  static EvalSuite* suite_;
};

Corpus* IntegrationTest::corpus_ = nullptr;
EvalSuite* IntegrationTest::suite_ = nullptr;

TEST_F(IntegrationTest, AllRankersBeatCoinFlipOverall) {
  for (const std::string& name : KnownRankerNames()) {
    RankerEvaluation eval = Evaluate(name);
    EXPECT_GT(eval.overall_accuracy, 0.55) << name;
  }
}

TEST_F(IntegrationTest, EnsembleTwprImprovesOnPlainPageRank) {
  // The paper's headline claim: the time-aware ensemble fixes the recency
  // blindness of static PageRank — a large overall-accuracy gain without
  // giving up accuracy among recent articles.
  RankerEvaluation pr = Evaluate("pagerank");
  RankerEvaluation ens_twpr = Evaluate("ens_twpr");
  EXPECT_GT(ens_twpr.overall_accuracy, pr.overall_accuracy + 0.02);
  EXPECT_GE(ens_twpr.recent_accuracy, pr.recent_accuracy - 0.005);
}

TEST_F(IntegrationTest, EnsembleTwprBeatsCitationCount) {
  RankerEvaluation cc = Evaluate("cc");
  RankerEvaluation ens_twpr = Evaluate("ens_twpr");
  EXPECT_GT(ens_twpr.overall_accuracy, cc.overall_accuracy + 0.02);
  EXPECT_GT(ens_twpr.recent_accuracy, cc.recent_accuracy);
}

TEST_F(IntegrationTest, EnsembleTwprBeatsEveryPaperBaselineOverall) {
  RankerEvaluation ens_twpr = Evaluate("ens_twpr");
  for (const char* baseline :
       {"cc", "pagerank", "hits", "citerank", "futurerank"}) {
    RankerEvaluation eval = Evaluate(baseline);
    EXPECT_GT(ens_twpr.overall_accuracy, eval.overall_accuracy) << baseline;
  }
}

TEST_F(IntegrationTest, EnsembleFlattensAgeBias) {
  auto pr = MakeRanker("pagerank").value()->Rank(corpus_->graph).value();
  auto ens = MakeRanker("ens_twpr").value()->Rank(corpus_->graph).value();
  double pr_slope =
      RecencyBiasSlope(PercentilesByYear(corpus_->graph, pr.scores));
  double ens_slope =
      RecencyBiasSlope(PercentilesByYear(corpus_->graph, ens.scores));
  EXPECT_LT(std::abs(ens_slope), std::abs(pr_slope));
}

TEST_F(IntegrationTest, GraphSurvivesSerializationUnderRanking) {
  // Serialize -> reload -> identical ranking, across both formats.
  const std::string path = ::testing::TempDir() + "/integration.bin";
  ASSERT_TRUE(WriteGraphBinaryFile(corpus_->graph, path).ok());
  CitationGraph reloaded = ReadGraphBinaryFile(path).value();
  auto ranker = MakeRanker("twpr").value();
  auto original = ranker->Rank(corpus_->graph).value();
  auto roundtrip = ranker->Rank(reloaded).value();
  EXPECT_EQ(original.scores, roundtrip.scores);
}

TEST_F(IntegrationTest, FacadeAgreesWithRegistry) {
  Config config;
  config.Set("ranker", "ens_twpr");
  ScholarRanker facade = ScholarRanker::Create(config).value();
  RankingOutput out = facade.RankCorpus(*corpus_).value();
  auto direct = MakeRanker("ens_twpr").value();
  RankContext ctx;
  ctx.graph = &corpus_->graph;
  ctx.authors = &corpus_->authors;
  auto direct_result = direct->Rank(ctx).value();
  EXPECT_EQ(out.scores, direct_result.scores);
}

TEST_F(IntegrationTest, TwprIsAtLeastAsGoodAsPageRankOnRecent) {
  RankerEvaluation pr = Evaluate("pagerank");
  RankerEvaluation twpr = Evaluate("twpr");
  EXPECT_GE(twpr.recent_accuracy, pr.recent_accuracy - 0.01);
}

}  // namespace
}  // namespace scholar
