#include "core/scholar_ranker.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace scholar {
namespace {

Corpus SmallCorpus() {
  SyntheticOptions o;
  o.num_articles = 1500;
  o.num_years = 10;
  o.seed = 33;
  return GenerateSyntheticCorpus(o, "facade").value();
}

TEST(ScholarRankerTest, DefaultIsEnsTwpr) {
  ScholarRanker ranker = ScholarRanker::CreateDefault().value();
  EXPECT_EQ(ranker.name(), "ens_twpr");
}

TEST(ScholarRankerTest, CreateFromConfig) {
  Config config;
  config.Set("ranker", "pagerank");
  ScholarRanker ranker = ScholarRanker::Create(config).value();
  EXPECT_EQ(ranker.name(), "pagerank");
}

TEST(ScholarRankerTest, CreateRejectsUnknownRanker) {
  Config config;
  config.Set("ranker", "mystery");
  EXPECT_TRUE(ScholarRanker::Create(config).status().IsNotFound());
}

TEST(ScholarRankerTest, RankCorpusProducesConsistentViews) {
  Corpus corpus = SmallCorpus();
  ScholarRanker ranker = ScholarRanker::CreateDefault().value();
  RankingOutput out = ranker.RankCorpus(corpus).value();
  ASSERT_EQ(out.scores.size(), corpus.num_articles());
  ASSERT_EQ(out.ranks.size(), corpus.num_articles());
  ASSERT_EQ(out.percentiles.size(), corpus.num_articles());

  // Rank 0 must be the article with the highest score.
  NodeId best = 0;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    if (out.scores[v] > out.scores[best]) best = v;
  }
  EXPECT_EQ(out.ranks[best], 0u);
  EXPECT_DOUBLE_EQ(out.percentiles[best], 1.0);

  // Ranks are a permutation of 0..n-1.
  std::vector<bool> seen(corpus.num_articles(), false);
  for (uint32_t r : out.ranks) {
    ASSERT_LT(r, corpus.num_articles());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(ScholarRankerTest, TopMatchesRanks) {
  Corpus corpus = SmallCorpus();
  ScholarRanker ranker = ScholarRanker::CreateDefault().value();
  RankingOutput out = ranker.RankCorpus(corpus).value();
  std::vector<NodeId> top = out.Top(10);
  ASSERT_EQ(top.size(), 10u);
  for (uint32_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(out.ranks[top[i]], i);
  }
}

TEST(ScholarRankerTest, TopClampsOversizedK) {
  Corpus corpus = SmallCorpus();
  ScholarRanker ranker = ScholarRanker::CreateDefault().value();
  RankingOutput out = ranker.RankCorpus(corpus).value();
  // Asking for more articles than exist returns all of them, best first.
  std::vector<NodeId> all = out.Top(corpus.num_articles() + 1000);
  ASSERT_EQ(all.size(), corpus.num_articles());
  for (uint32_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(out.ranks[all[i]], i);
  }
  EXPECT_EQ(all, out.Descending());
}

TEST(ScholarRankerTest, TopOfEmptyRankingIsEmpty) {
  RankingOutput empty;
  EXPECT_TRUE(empty.Top(5).empty());
  EXPECT_TRUE(empty.Top(0).empty());
  EXPECT_TRUE(empty.Descending().empty());
}

TEST(ScholarRankerTest, FutureRankConfigWorksViaCorpusAuthors) {
  Corpus corpus = SmallCorpus();
  Config config;
  config.Set("ranker", "futurerank");
  ScholarRanker ranker = ScholarRanker::Create(config).value();
  RankingOutput out = ranker.RankCorpus(corpus).value();
  EXPECT_EQ(out.scores.size(), corpus.num_articles());
  // The bare graph lacks author data, so RankGraph must fail for
  // futurerank.
  EXPECT_TRUE(ranker.RankGraph(corpus.graph).status().IsInvalidArgument());
}

TEST(ScholarRankerTest, RankGraphWorksForGraphOnlyRankers) {
  Corpus corpus = SmallCorpus();
  Config config;
  config.Set("ranker", "twpr");
  ScholarRanker ranker = ScholarRanker::Create(config).value();
  RankingOutput out = ranker.RankGraph(corpus.graph).value();
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.iterations, 0);
}

}  // namespace
}  // namespace scholar
