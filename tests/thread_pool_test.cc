#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsIsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.Submit([&ran] { ran.store(true); }));
  pool.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  // Two tasks that can only finish if they overlap in time.
  std::atomic<int> arrivals{0};
  auto rendezvous = [&arrivals] {
    arrivals.fetch_add(1);
    // Wait (bounded) for the sibling; a serial pool would deadlock here
    // without the timeout and fail the expectation below.
    for (int spin = 0; spin < 10000 && arrivals.load() < 2; ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  pool.Drain();
  EXPECT_EQ(arrivals.load(), 2);
}

TEST(ThreadPoolTest, ShutdownFinishesQueuedWorkAndRejectsNew) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Shutdown();
    EXPECT_EQ(counter.load(), 50);  // queued work ran before join
    EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
    pool.Shutdown();  // idempotent
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutLosingQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace scholar
