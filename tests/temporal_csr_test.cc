#include "graph/temporal_csr.h"

#include <algorithm>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "graph/time_slicer.h"
#include "rank/hits.h"
#include "rank/katz.h"
#include "rank/pagerank.h"
#include "rank/sceas.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeShuffledYearGraph;
using testing_util::MakeTinyGraph;

TEST(TemporalCsrTest, YearMonotoneGraphTakesIdentityFastPath) {
  CitationGraph g = MakeRandomGraph(300, 3.0, 1990, 12, 7);
  TemporalCsr tcsr(g);
  EXPECT_TRUE(tcsr.is_identity());
  // The sorted graph IS the parent — no copy was made.
  EXPECT_EQ(&tcsr.sorted_graph(), &g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(tcsr.ToParent(v), v);
    EXPECT_EQ(tcsr.FromParent(v), v);
  }
}

TEST(TemporalCsrTest, ShuffledGraphIsPermutedAndSorted) {
  CitationGraph g = MakeShuffledYearGraph(400, 3.0, 1990, 15, 11);
  TemporalCsr tcsr(g);
  ASSERT_FALSE(tcsr.is_identity());
  const CitationGraph& sg = tcsr.sorted_graph();
  ASSERT_EQ(sg.num_nodes(), g.num_nodes());
  ASSERT_EQ(sg.num_edges(), g.num_edges());

  // Sorted ids ascend with year, and the permutation is a bijection that
  // preserves years.
  for (NodeId s = 0; s < sg.num_nodes(); ++s) {
    if (s > 0) EXPECT_LE(sg.year(s - 1), sg.year(s));
    EXPECT_EQ(sg.year(s), g.year(tcsr.ToParent(s)));
    EXPECT_EQ(tcsr.FromParent(tcsr.ToParent(s)), s);
  }

  // The edge sets agree under the permutation.
  std::set<std::pair<NodeId, NodeId>> parent_edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.References(u)) parent_edges.insert({u, v});
  }
  std::set<std::pair<NodeId, NodeId>> mapped_edges;
  for (NodeId s = 0; s < sg.num_nodes(); ++s) {
    for (NodeId t : sg.References(s)) {
      mapped_edges.insert({tcsr.ToParent(s), tcsr.ToParent(t)});
    }
  }
  EXPECT_EQ(parent_edges, mapped_edges);
}

TEST(TemporalCsrTest, NodesThroughMatchesYearCounts) {
  CitationGraph g = MakeTinyGraph();  // years 2000..2004, one node each
  TemporalCsr tcsr(g);
  EXPECT_EQ(tcsr.NodesThrough(1999), 0u);
  EXPECT_EQ(tcsr.NodesThrough(2000), 1u);
  EXPECT_EQ(tcsr.NodesThrough(2002), 3u);
  EXPECT_EQ(tcsr.NodesThrough(2004), 5u);
  EXPECT_EQ(tcsr.NodesThrough(2050), 5u);
}

TEST(TemporalCsrTest, EmptyViewReportsUnknownBoundaryYear) {
  CitationGraph g = MakeTinyGraph();
  TemporalCsr tcsr(g);
  SnapshotView view = tcsr.MakeView(1999);
  EXPECT_EQ(view.num_nodes(), 0u);
  EXPECT_EQ(view.boundary_year(), kUnknownYear);
}

TEST(TemporalCsrTest, UnknownYearNodesBelongToEverySnapshot) {
  // kUnknownYear sorts first, and ExtractSnapshot keeps unknown-year
  // articles at every boundary; views must agree.
  CitationGraph g = MakeGraph({kUnknownYear, 2005, 2001},
                              {{1, 0}, {1, 2}, {2, 0}});
  TemporalCsr tcsr(g);
  SnapshotView view = tcsr.MakeView(2001);
  Snapshot snap = ExtractSnapshot(g, 2001);
  EXPECT_EQ(view.num_nodes(), snap.graph.num_nodes());
  EXPECT_EQ(view.num_nodes(), 2u);  // the unknown-year node + the 2001 one
}

/// Checks one view against the materialized oracle extracted from the
/// sorted graph (identity id maps there, so ids compare directly).
void ExpectViewMatchesOracle(const TemporalCsr& tcsr, Year boundary) {
  SnapshotView view = tcsr.MakeView(boundary);
  Snapshot snap =
      ExtractSnapshot(tcsr.sorted_graph(), boundary);
  ASSERT_EQ(view.num_nodes(), snap.graph.num_nodes());
  EXPECT_EQ(view.boundary_year(), snap.boundary_year);
  EXPECT_EQ(view.CountEdges(), snap.graph.num_edges());
  for (NodeId s = 0; s < view.num_nodes(); ++s) {
    EXPECT_EQ(view.year(s), snap.graph.year(s));
    ASSERT_EQ(view.OutDegree(s), snap.graph.OutDegree(s));
    ASSERT_EQ(view.InDegree(s), snap.graph.InDegree(s));
    std::span<const NodeId> view_refs = view.References(s);
    std::span<const NodeId> snap_refs = snap.graph.References(s);
    for (size_t i = 0; i < view_refs.size(); ++i) {
      EXPECT_EQ(view_refs[i], snap_refs[i]);
    }
    std::span<const NodeId> view_cit = view.Citers(s);
    std::span<const NodeId> snap_cit = snap.graph.Citers(s);
    for (size_t i = 0; i < view_cit.size(); ++i) {
      EXPECT_EQ(view_cit[i], snap_cit[i]);
    }
  }
}

TEST(TemporalCsrTest, ViewsMatchMaterializedOracleAcrossBoundaries) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    CitationGraph g = MakeShuffledYearGraph(250, 2.5, 2000, 10, seed);
    TemporalCsr tcsr(g);
    for (Year b = 1999; b <= 2010; ++b) {
      ExpectViewMatchesOracle(tcsr, b);
    }
  }
}

TEST(TemporalCsrTest, IdentityViewsMatchMaterializedOracle) {
  CitationGraph g = MakeRandomGraph(250, 2.5, 2000, 10, 21);
  TemporalCsr tcsr(g);
  ASSERT_TRUE(tcsr.is_identity());
  for (Year b = 1999; b <= 2010; ++b) {
    ExpectViewMatchesOracle(tcsr, b);
  }
}

// -- Kernel bit-identity: every view-capable ranker must produce exactly
// -- the scores it produces on the materialized snapshot of the same
// -- prefix, at every thread count.

std::vector<std::shared_ptr<const Ranker>> ViewCapableRankers(int threads) {
  PowerIterationOptions power;
  power.threads = threads;
  TwprOptions twpr;
  twpr.recency_jump = true;
  twpr.power = power;
  HitsOptions hits;
  hits.threads = threads;
  KatzOptions katz;
  katz.threads = threads;
  SceasOptions sceas;
  sceas.threads = threads;
  return {
      std::make_shared<PageRankRanker>(power),
      std::make_shared<TimeWeightedPageRank>(twpr),
      std::make_shared<HitsRanker>(hits),
      std::make_shared<KatzRanker>(katz),
      std::make_shared<SceasRanker>(sceas),
  };
}

TEST(TemporalCsrTest, ViewRankingIsBitIdenticalToMaterialized) {
  for (uint64_t seed : {5u, 6u}) {
    CitationGraph g = MakeShuffledYearGraph(300, 3.0, 2000, 8, seed);
    TemporalCsr tcsr(g);
    const CitationGraph& sg = tcsr.sorted_graph();
    for (Year boundary : {2002, 2005, 2007}) {
      SnapshotView view = tcsr.MakeView(boundary);
      Snapshot snap = ExtractSnapshot(sg, boundary);
      ASSERT_EQ(view.num_nodes(), snap.graph.num_nodes());
      if (view.num_nodes() == 0) continue;
      for (int threads : {1, 2, 4, 8}) {
        for (const auto& ranker : ViewCapableRankers(threads)) {
          RankContext view_ctx;
          view_ctx.view = &view;
          view_ctx.now_year = boundary;
          Result<RankResult> view_result = ranker->Rank(view_ctx);
          ASSERT_TRUE(view_result.ok())
              << ranker->name() << ": " << view_result.status().ToString();

          RankContext mat_ctx;
          mat_ctx.graph = &snap.graph;
          mat_ctx.now_year = boundary;
          Result<RankResult> mat_result = ranker->Rank(mat_ctx);
          ASSERT_TRUE(mat_result.ok())
              << ranker->name() << ": " << mat_result.status().ToString();

          ASSERT_EQ(view_result.value().scores.size(),
                    mat_result.value().scores.size());
          EXPECT_EQ(view_result.value().iterations,
                    mat_result.value().iterations)
              << ranker->name() << " threads=" << threads;
          // Bitwise, not approximate: the view path must run the exact
          // same arithmetic as the materialized one.
          EXPECT_TRUE(view_result.value().scores ==
                      mat_result.value().scores)
              << ranker->name() << " threads=" << threads
              << " boundary=" << boundary;
        }
      }
    }
  }
}

TEST(TemporalCsrTest, ViewRankingIsThreadCountInvariant) {
  CitationGraph g = MakeShuffledYearGraph(300, 3.0, 2000, 8, 9);
  TemporalCsr tcsr(g);
  SnapshotView view = tcsr.MakeView(2005);
  ASSERT_GT(view.num_nodes(), 0u);
  std::vector<std::vector<double>> per_thread_scores;
  for (int threads : {1, 2, 4, 8}) {
    for (const auto& ranker : ViewCapableRankers(threads)) {
      RankContext ctx;
      ctx.view = &view;
      ctx.now_year = 2005;
      Result<RankResult> result = ranker->Rank(ctx);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      per_thread_scores.push_back(std::move(result.value().scores));
    }
  }
  const size_t kinds = per_thread_scores.size() / 4;
  for (size_t t = 1; t < 4; ++t) {
    for (size_t k = 0; k < kinds; ++k) {
      EXPECT_TRUE(per_thread_scores[k] == per_thread_scores[t * kinds + k])
          << "ranker " << k << " diverges at thread set " << t;
    }
  }
}

TEST(TemporalCsrTest, ApproxBytesIsFreeOnIdentityGraphs) {
  CitationGraph g = MakeRandomGraph(500, 3.0, 1990, 10, 3);
  TemporalCsr identity(g);
  CitationGraph shuffled = MakeShuffledYearGraph(500, 3.0, 1990, 10, 3);
  TemporalCsr permuted(shuffled);
  // The identity index holds no per-node arrays; the permuted one owns a
  // full relabeled copy and must say so.
  EXPECT_LT(identity.ApproxBytes(), permuted.ApproxBytes());
}

}  // namespace
}  // namespace scholar
