#include "rank/gauss_seidel.h"

#include <numeric>

#include <gtest/gtest.h>

#include "rank/time_weighted_pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(GaussSeidelTest, MatchesPowerIterationFixedPoint) {
  CitationGraph g = MakeRandomGraph(500, 5, 1985, 20, 3);
  PowerIterationOptions o;
  o.tolerance = 1e-12;
  RankResult power = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult gs = GaussSeidelPageRank(g, {}, {}, o).value();
  ASSERT_EQ(power.scores.size(), gs.scores.size());
  for (size_t i = 0; i < power.scores.size(); ++i) {
    EXPECT_NEAR(power.scores[i], gs.scores[i], 1e-8);
  }
}

TEST(GaussSeidelTest, ConvergesInFewerSweeps) {
  CitationGraph g = MakeRandomGraph(2000, 6, 1985, 25, 5);
  PowerIterationOptions o;
  o.tolerance = 1e-10;
  RankResult power = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult gs = GaussSeidelPageRank(g, {}, {}, o).value();
  EXPECT_TRUE(gs.converged);
  EXPECT_LT(gs.iterations, power.iterations);
}

TEST(GaussSeidelTest, WeightedSystemAgrees) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 7);
  std::vector<double> weights =
      TimeWeightedPageRank::ComputeEdgeWeights(g, 0.4);
  PowerIterationOptions o;
  o.tolerance = 1e-12;
  RankResult power = WeightedPowerIteration(g, weights, {}, o).value();
  RankResult gs = GaussSeidelPageRank(g, weights, {}, o).value();
  for (size_t i = 0; i < power.scores.size(); ++i) {
    EXPECT_NEAR(power.scores[i], gs.scores[i], 1e-8);
  }
}

TEST(GaussSeidelTest, CustomJumpAgrees) {
  CitationGraph g = MakeRandomGraph(200, 3, 1990, 10, 9);
  std::vector<double> jump(g.num_nodes(), 0.0);
  // Mass concentrated on the newest quarter.
  size_t start = g.num_nodes() * 3 / 4;
  for (size_t v = start; v < g.num_nodes(); ++v) {
    jump[v] = 1.0 / static_cast<double>(g.num_nodes() - start);
  }
  PowerIterationOptions o;
  o.tolerance = 1e-12;
  RankResult power = WeightedPowerIteration(g, {}, jump, o).value();
  RankResult gs = GaussSeidelPageRank(g, {}, jump, o).value();
  for (size_t i = 0; i < power.scores.size(); ++i) {
    EXPECT_NEAR(power.scores[i], gs.scores[i], 1e-8);
  }
}

TEST(GaussSeidelTest, ScoresFormDistribution) {
  RankResult r = GaussSeidelPageRank(MakeTinyGraph(), {}, {},
                                     PowerIterationOptions{})
                     .value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
}

TEST(GaussSeidelTest, WarmStartKeepsFixedPoint) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 11);
  PowerIterationOptions o;
  RankResult cold = GaussSeidelPageRank(g, {}, {}, o).value();
  RankResult warm =
      GaussSeidelPageRank(g, {}, {}, o, cold.scores).value();
  EXPECT_LE(warm.iterations, 3);
  for (size_t i = 0; i < cold.scores.size(); ++i) {
    EXPECT_NEAR(cold.scores[i], warm.scores[i], 1e-8);
  }
}

TEST(GaussSeidelTest, RankerInterface) {
  GaussSeidelPageRankRanker ranker;
  EXPECT_EQ(ranker.name(), "pagerank_gs");
  RankResult r = ranker.Rank(MakeTinyGraph()).value();
  EXPECT_EQ(r.scores.size(), 5u);
  EXPECT_TRUE(r.converged);
}

TEST(GaussSeidelTest, ValidatesInputs) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  o.damping = 1.0;
  EXPECT_TRUE(GaussSeidelPageRank(g, {}, {}, o).status().IsInvalidArgument());
  o = PowerIterationOptions();
  EXPECT_TRUE(GaussSeidelPageRank(g, {1.0}, {}, o)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GaussSeidelPageRank(g, {}, {0.5, 0.5}, o)
                  .status()
                  .IsInvalidArgument());
}

TEST(GaussSeidelTest, EmptyGraph) {
  RankResult r =
      GaussSeidelPageRank(CitationGraph(), {}, {}, PowerIterationOptions{})
          .value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(GaussSeidelTest, DanglingHeavyGraphAgrees) {
  // Star with many dangling leaves stresses the lagged dangling-mass term.
  std::vector<Year> years(40, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 40; u += 2) edges.push_back({u, 0});
  CitationGraph g = MakeGraph(years, edges);
  PowerIterationOptions o;
  o.tolerance = 1e-13;
  RankResult power = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult gs = GaussSeidelPageRank(g, {}, {}, o).value();
  for (size_t i = 0; i < power.scores.size(); ++i) {
    EXPECT_NEAR(power.scores[i], gs.scores[i], 1e-9);
  }
}

}  // namespace
}  // namespace scholar
