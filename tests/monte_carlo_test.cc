#include "rank/monte_carlo.h"

#include <numeric>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "rank/pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(MonteCarloTest, ScoresFormDistribution) {
  MonteCarloPageRankRanker ranker;
  RankResult r = ranker.Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-12);
  for (double s : r.scores) EXPECT_GT(s, 0.0);
}

TEST(MonteCarloTest, DeterministicInSeed) {
  CitationGraph g = MakeRandomGraph(200, 4, 1990, 10, 3);
  MonteCarloOptions o;
  o.seed = 5;
  RankResult a = MonteCarloPageRankRanker(o).Rank(g).value();
  RankResult b = MonteCarloPageRankRanker(o).Rank(g).value();
  EXPECT_EQ(a.scores, b.scores);
  o.seed = 6;
  RankResult c = MonteCarloPageRankRanker(o).Rank(g).value();
  EXPECT_NE(a.scores, c.scores);
}

TEST(MonteCarloTest, ApproximatesExactPageRank) {
  CitationGraph g = MakeRandomGraph(400, 5, 1985, 15, 7);
  RankResult exact = PageRankRanker().Rank(g).value();
  MonteCarloOptions o;
  o.walks_per_node = 100;
  RankResult approx = MonteCarloPageRankRanker(o).Rank(g).value();
  double rho = SpearmanRho(exact.scores, approx.scores).value();
  EXPECT_GT(rho, 0.9);
}

TEST(MonteCarloTest, MoreWalksImproveAccuracy) {
  CitationGraph g = MakeRandomGraph(400, 5, 1985, 15, 9);
  RankResult exact = PageRankRanker().Rank(g).value();
  MonteCarloOptions coarse;
  coarse.walks_per_node = 2;
  MonteCarloOptions fine;
  fine.walks_per_node = 200;
  double rho_coarse =
      SpearmanRho(exact.scores,
                  MonteCarloPageRankRanker(coarse).Rank(g).value().scores)
          .value();
  double rho_fine =
      SpearmanRho(exact.scores,
                  MonteCarloPageRankRanker(fine).Rank(g).value().scores)
          .value();
  EXPECT_GT(rho_fine, rho_coarse);
  EXPECT_GT(rho_fine, 0.95);
}

TEST(MonteCarloTest, HeadOfRankingIsAccurate) {
  // Star graph: the hub must be ranked first even with few walks.
  std::vector<Year> years(50, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 50; ++u) edges.push_back({u, 0});
  CitationGraph g = MakeGraph(years, edges);
  MonteCarloOptions o;
  o.walks_per_node = 3;
  RankResult r = MonteCarloPageRankRanker(o).Rank(g).value();
  EXPECT_EQ(TopK(r.scores, 1)[0], 0u);
}

TEST(MonteCarloTest, ZeroDampingCountsOnlyStarts) {
  // d = 0: every walk is a single visit to its start; all scores equal.
  CitationGraph g = MakeTinyGraph();
  MonteCarloOptions o;
  o.damping = 0.0;
  RankResult r = MonteCarloPageRankRanker(o).Rank(g).value();
  for (double s : r.scores) EXPECT_DOUBLE_EQ(s, 0.2);
}

TEST(MonteCarloTest, RejectsBadOptions) {
  MonteCarloOptions o;
  o.walks_per_node = 0;
  EXPECT_TRUE(MonteCarloPageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
  o = MonteCarloOptions();
  o.damping = 1.0;
  EXPECT_TRUE(MonteCarloPageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(MonteCarloTest, EmptyGraph) {
  RankResult r = MonteCarloPageRankRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

}  // namespace
}  // namespace scholar
