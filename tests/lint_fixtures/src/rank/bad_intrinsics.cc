// Fixture: raw SIMD outside src/rank/kernel/ — the include, the vector
// type, and the intrinsic call must each fire raw-intrinsics.

#include <immintrin.h>

namespace scholar {

double SumFour(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  double out[4];
  _mm256_storeu_pd(out, v);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace scholar
