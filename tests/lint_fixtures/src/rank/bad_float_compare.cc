// Lint fixture: every == / != on floating-point data in src/rank/ must be
// diagnosed. Never compiled — consumed by scholar_lint_test only.
#include "rank/bad_float_compare.h"

#include <vector>

bool Converged(double delta, const std::vector<double>& scores, int i) {
  if (delta == 0.0) return true;                 // literal operand
  if (scores[i] != scores[i + 1]) return false;  // declared-double operand
  return delta != 1e-9;                          // exponent literal operand
}
