// Fixture: a deliberate out-of-kernel intrinsic says so line by line
// with NOLINT(raw-intrinsics) markers; nothing may fire.

#include <immintrin.h>  // NOLINT(raw-intrinsics)

namespace scholar {

double FirstLane(const double* p) {
  __m256d v = _mm256_loadu_pd(p);  // NOLINT(raw-intrinsics)
  double out[4];
  _mm256_storeu_pd(out, v);  // NOLINT(raw-intrinsics)
  return out[0];
}

}  // namespace scholar
