// Fixture: unchecked-read is scoped to the untrusted-input decoders;
// a memcpy between trusted in-memory buffers in rank/ is not a finding.

#include "rank/raw_copy_ok.h"

#include <cstring>

namespace scholar {

void CopyScores(const double* src, double* dst, unsigned long n) {
  std::memcpy(dst, src, n * sizeof(double));
}

}  // namespace scholar
