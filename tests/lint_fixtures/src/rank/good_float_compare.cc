// Lint fixture: compliant floating-point handling in src/rank/.
#include "rank/good_float_compare.h"

#include <cmath>
#include <vector>

bool Converged(double delta, const std::vector<double>* scores, int round) {
  if (scores == nullptr) return false;      // pointer compare: not flagged
  if (round == 0 || round != 7) return false;  // integer compares: fine
  return std::abs(delta) < 1e-12;           // tolerance compare: fine
}

bool ExactTieIntended(double a, double b) {
  return a == b;  // NOLINT(float-compare): bit-identity tie grouping
}
