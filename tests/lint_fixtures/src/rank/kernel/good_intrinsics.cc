// Fixture: the same SIMD code is legal inside src/rank/kernel/, the one
// directory that owns intrinsics (dispatch seam + scalar oracle).

#include <immintrin.h>

namespace scholar {
namespace kernel {

double SumFour(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  double out[4];
  _mm256_storeu_pd(out, v);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace kernel
}  // namespace scholar
