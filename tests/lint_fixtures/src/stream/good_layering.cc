// Fixture: everything a stream file legitimately consumes — the graph it
// grows, the kernels it re-runs, the ensemble and registry seams — points
// strictly down the DAG and must stay quiet.

#include "stream/good_layering.h"

#include "util/status.h"             // layer 0 < 5: legal
#include "graph/temporal_csr.h"      // layer 1 < 5: legal
#include "rank/pagerank.h"           // layer 2 < 5: legal
#include "ensemble/ensemble_ranker.h"  // layer 3 < 5: legal
#include "core/registry.h"           // layer 4 < 5: legal
#include "stream/edge_batch.h"       // intra-module: free

namespace scholar::stream {

int StreamGoodLayeringFixture() { return 0; }

}  // namespace scholar::stream
