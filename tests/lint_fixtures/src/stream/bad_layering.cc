// Fixture: the stream module sits between core and serve — the epoch
// pipeline may drive any ranking kernel but publication is an injected
// callback, so an #include of serve (or cli) from stream is the inverted
// edge the DAG extension must reject.

#include "stream/bad_layering.h"

#include "util/status.h"            // layer 0 < 5: legal
#include "graph/citation_graph.h"   // layer 1 < 5: legal
#include "rank/ranker.h"            // layer 2 < 5: legal
#include "core/registry.h"          // layer 4 < 5: legal
#include "serve/snapshot_manager.h" // layer 6 >= 5: back-edge, must fire
#include "cli/commands.h"           // layer 7 >= 5: back-edge, must fire

namespace scholar::stream {

int StreamLayeringFixture() { return 0; }

}  // namespace scholar::stream
