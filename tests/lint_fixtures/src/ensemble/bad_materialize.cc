// Fixture: ExtractSnapshot call sites outside the time slicer must be
// flagged (ranking code is expected to consume zero-copy views).
#include "graph/time_slicer.h"

namespace scholar {

void RankAllSnapshots(const CitationGraph& g) {
  Snapshot first = ExtractSnapshot(g, 2000);
  Snapshot second = ExtractSnapshot(g, 2010);
  (void)first;
  (void)second;
}

}  // namespace scholar
