// Fixture: sanctioned ExtractSnapshot uses stay quiet — a NOLINT'd oracle
// call, and mentions that are not calls (declarations, qualified names).
#include "graph/time_slicer.h"

namespace scholar {

Snapshot ExtractSnapshotForOracle(const CitationGraph& g);

void CompareAgainstOracle(const CitationGraph& g) {
  // The oracle the zero-copy path is verified against.
  Snapshot oracle = ExtractSnapshot(g, 2000);  // NOLINT(materialize-snapshot)
  (void)oracle;
  // Naming the function without calling it is fine.
  auto* oracle_fn = &ExtractSnapshot;
  (void)oracle_fn;
}

}  // namespace scholar
