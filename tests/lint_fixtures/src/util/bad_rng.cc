// Lint fixture: ad-hoc randomness outside util/rng.
#include "util/bad_rng.h"

#include <cstdlib>
#include <random>

int Roll() {
  std::srand(1234);                   // diagnosed: srand
  std::mt19937 gen(std::random_device{}());  // diagnosed twice
  (void)gen;
  return std::rand() % 6;             // diagnosed: rand
}
