// Lint fixture: a NOLINT naming the wrong rule must not suppress.
#include "serve/nolint_mismatch.h"

#include <iostream>

void Dump() {
  std::cout << "oops\n";  // NOLINT(float-compare) — wrong rule, still flagged
}
