// Fixture: the downward serve -> stream edge (layer 5 < 6) is the legal
// direction of the new DAG segment — the serving layer may consume the
// streaming pipeline, never the reverse — and must stay quiet.

#include "serve/good_stream_include.h"

#include "stream/epoch_pipeline.h"  // layer 5 < 6: legal
#include "stream/edge_batch.h"      // layer 5 < 6: legal

namespace scholar::serve {

int ServeStreamFixture() { return 0; }

}  // namespace scholar::serve
