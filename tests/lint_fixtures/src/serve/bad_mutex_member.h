// Lint fixture: mutex members with no GUARDED_BY sibling on any state.
#ifndef LINT_FIXTURE_BAD_MUTEX_MEMBER_H_
#define LINT_FIXTURE_BAD_MUTEX_MEMBER_H_

#include <mutex>
#include <vector>

#include "util/mutex.h"

class NakedStdMutex {
 public:
  void Push(int v);

 private:
  std::mutex mu_;           // diagnosed: nothing is GUARDED_BY it
  std::vector<int> items_;  // the state it presumably protects
};

struct NakedScholarMutex {
  scholar::Mutex* unrelated;  // pointer member: not a mutex declaration
  Mutex mu_;                  // diagnosed: annotated type, unannotated state
  int counter = 0;
};

#endif  // LINT_FIXTURE_BAD_MUTEX_MEMBER_H_
