// Lint fixture: every violation here is suppressed, so the file is clean.
#include "serve/nolint_suppressed.h"

#include <iostream>
#include <random>

void Dump(double a, double b) {
  std::cout << "debug dump\n";  // NOLINT
  std::mt19937 gen(42);         // NOLINT(unseeded-rng)
  (void)gen;
  (void)a;
  (void)b;
  std::cout << rand();  // NOLINT(raw-stdout, unseeded-rng)
}
