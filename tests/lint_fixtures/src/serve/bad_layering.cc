// Fixture: include-layering must fire on back-edges and same-layer
// edges out of the serve module. The cli include is the canonical
// inverted edge (cli sits on the top layer; serve must never see it).

#include "serve/bad_layering.h"

#include "util/status.h"        // layer 0 < 5: legal
#include "graph/types.h"        // layer 1 < 5: legal
#include "core/scholar_ranker.h"  // layer 4 < 5: legal
#include "cli/commands.h"       // layer 6 >= 5: back-edge, must fire

namespace scholar::serve {

int LayeringFixture() { return 0; }

}  // namespace scholar::serve
