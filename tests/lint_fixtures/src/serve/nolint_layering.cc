// Fixture: a deliberate layering exception is silenced by an
// inline NOLINT(include-layering) on the #include line itself, and
// an unrelated rule name does not silence it.

#include "serve/nolint_layering.h"

#include "cli/commands.h"  // NOLINT(include-layering)

namespace scholar::serve {

int SuppressedLayeringFixture() { return 0; }

}  // namespace scholar::serve
