// Lint fixture for stale-nolint: dead suppressions are themselves
// violations; suppressions naming another tool's rules are not audited.
//
// Expected: exactly one stale-nolint diagnostic, at the NOLINT(raw-stdout)
// below that suppresses nothing. The NOLINT(determinism) marker names a
// scholar_analyze rule, which scholar_lint must leave alone, and the
// live NOLINT(unseeded-rng) suppresses a real hit, so neither may fire.
#include "serve/stale_nolint.h"

#include <random>

namespace scholar::serve {

int StaleNolintFixture() {
  int total = 0;  // NOLINT(raw-stdout)
  std::mt19937 gen(7);  // NOLINT(unseeded-rng)
  total += static_cast<int>(gen());
  total += 1;  // NOLINT(determinism): another tool's rule, not audited here
  return total;
}

}  // namespace scholar::serve
