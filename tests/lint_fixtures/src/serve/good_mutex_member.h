// Lint fixture: properly annotated mutex-protected state.
#ifndef LINT_FIXTURE_GOOD_MUTEX_MEMBER_H_
#define LINT_FIXTURE_GOOD_MUTEX_MEMBER_H_

#include <mutex>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

class AnnotatedCounter {
 public:
  void Bump() {
    scholar::MutexLock lock(mu_);
    ++count_;
  }

 private:
  scholar::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

// A lock_guard<std::mutex> local inside a function body must not be
// mistaken for a member declaration.
class LocalLockOnly {
 public:
  int Get() const;

 private:
  mutable Mutex mu_;
  std::vector<int> items_ GUARDED_BY(mu_);
};

#endif  // LINT_FIXTURE_GOOD_MUTEX_MEMBER_H_
