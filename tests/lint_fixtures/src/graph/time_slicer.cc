// Fixture: the time slicer implementation itself may call (and define)
// ExtractSnapshot without suppression.
#include "graph/time_slicer.h"

namespace scholar {

Snapshot ExtractSnapshotThrough(const CitationGraph& g, Year boundary) {
  return ExtractSnapshot(g, boundary);
}

}  // namespace scholar
