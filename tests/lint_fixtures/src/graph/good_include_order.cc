// Lint fixture: own header first, then system headers.
#include "graph/good_include_order.h"

#include <vector>

int Degree(const std::vector<int>& adj) { return static_cast<int>(adj.size()); }
