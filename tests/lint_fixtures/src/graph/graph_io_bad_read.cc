// Fixture: unchecked-read must fire in parser files on raw memcpy()
// and on a mutable reinterpret_cast — both are unbounded reads from an
// attacker-controlled buffer.

#include "graph/graph_io_bad_read.h"

#include <cstdint>
#include <cstring>

namespace scholar {

uint64_t DecodeHeader(const char* buffer) {
  uint64_t count = 0;
  std::memcpy(&count, buffer, sizeof(count));  // must fire
  return count;
}

uint32_t* AliasPayload(char* buffer) {
  return reinterpret_cast<uint32_t*>(buffer + 8);  // must fire
}

}  // namespace scholar
