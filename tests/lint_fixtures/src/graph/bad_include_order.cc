// Lint fixture: own header not first.
#include <vector>

#include "graph/bad_include_order.h"

int Degree(const std::vector<int>& adj) { return static_cast<int>(adj.size()); }
