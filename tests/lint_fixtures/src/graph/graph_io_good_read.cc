// Fixture: unchecked-read stays quiet on the legal shapes — a const
// reinterpret_cast (the write path serializes trusted in-memory state)
// and a sanctioned low-level site carrying NOLINT(unchecked-read).

#include "graph/graph_io_good_read.h"

#include <cstdint>
#include <istream>
#include <ostream>

namespace scholar {

void EncodeHeader(uint64_t count, std::ostream* out) {
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
}

void SanctionedRawRead(std::istream* in, uint64_t* count) {
  in->read(reinterpret_cast<char*>(count),  // NOLINT(unchecked-read): sanctioned low-level read
           sizeof(*count));
}

}  // namespace scholar
