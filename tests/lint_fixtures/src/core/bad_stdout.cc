// Lint fixture: direct stdio output from library code.
#include "core/bad_stdout.h"

#include <cstdio>
#include <iostream>

void Announce(int n) {
  std::cout << "ranked " << n << " nodes\n";  // diagnosed: cout
  std::printf("ranked %d nodes\n", n);        // diagnosed: printf
}
