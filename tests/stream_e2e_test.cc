// End-to-end streaming acceptance: >= 3 batches ingested against a LIVE
// server while clients hammer it. Every republish must be observed
// (generation and snapshot_id advance in lockstep with epochs), no query
// is ever dropped or served stale (an article published in epoch k is
// queryable the moment Step(k) returns), and the continuously re-ranked
// scores must match a cold-rebuild oracle within the documented tolerance.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "stream/epoch_pipeline.h"
#include "stream/incremental_ranker.h"
#include "stream/streaming_graph.h"
#include "test_util.h"

namespace scholar {
namespace stream {
namespace {

using testing_util::MakeRandomGraph;

/// Minimal blocking line-protocol client (mirrors server_test.cc).
class TestClient {
 public:
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  std::string Query(const std::string& request) {
    std::string payload = request + "\n";
    size_t sent = 0;
    while (sent < payload.size()) {
      ssize_t n = ::send(fd_, payload.data() + sent, payload.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return "<connection dead>";
      }
      sent += static_cast<size_t>(n);
    }
    for (;;) {
      size_t nl = pending_.find('\n');
      if (nl != std::string::npos) {
        std::string line = pending_.substr(0, nl);
        pending_.erase(0, nl + 1);
        return line;
      }
      char buffer[4096];
      ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return "<connection dead>";
      pending_.append(buffer, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

uint64_t ParseField(const std::string& info, const std::string& key) {
  const size_t pos = info.find(key + "=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(info.c_str() + pos + key.size() + 1, nullptr, 10);
}

/// The full replay fixture: base graph + batches cut from one random
/// year-monotone corpus (backward-only citations, so nothing is dropped).
struct Fixture {
  CitationGraph full;
  CitationGraph base;
  std::vector<EdgeBatch> batches;
};

Fixture MakeFixture(size_t n, size_t n_base, size_t num_batches) {
  Fixture fixture;
  fixture.full = MakeRandomGraph(n, 5.0, 2000, 10, /*seed=*/4242);
  const std::vector<Year>& years = fixture.full.years();
  GraphBuilder builder;
  for (size_t i = 0; i < n_base; ++i) builder.AddNode(years[i]);
  for (NodeId u = 0; u < static_cast<NodeId>(n_base); ++u) {
    for (NodeId v : fixture.full.References(u)) {
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
    }
  }
  fixture.base = std::move(builder).Build().value();
  const size_t per_batch = (n - n_base) / num_batches;
  size_t start = n_base;
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t end = b + 1 == num_batches ? n : start + per_batch;
    EdgeBatch batch;
    batch.sequence = b + 1;
    batch.node_years.assign(years.begin() + start, years.begin() + end);
    for (NodeId u = static_cast<NodeId>(start); u < static_cast<NodeId>(end);
         ++u) {
      for (NodeId v : fixture.full.References(u)) {
        batch.edges.push_back({u, v});
      }
    }
    fixture.batches.push_back(std::move(batch));
    start = end;
  }
  return fixture;
}

TEST(StreamE2eTest, LiveServerObservesEveryEpochWithZeroDroppedQueries) {
  constexpr size_t kBaseNodes = 300;
  constexpr size_t kBatches = 4;  // acceptance floor is 3
  Fixture fixture = MakeFixture(600, kBaseNodes, kBatches);

  IncrementalRankerOptions options;
  options.ranker = "pagerank";
  options.mode = "full";
  IncrementalRanker ranker = IncrementalRanker::Create(options).value();
  StreamingGraph streaming(fixture.base);
  serve::SnapshotManager manager;
  EpochPublisher publisher =
      [&manager](const CitationGraph& graph, const RankResult& result,
                 const EpochStats& stats) -> Status {
    RankingOutput ranking;
    ranking.scores = result.scores;
    ranking.ranks = ScoresToRanks(result.scores);
    ranking.percentiles = RankPercentiles(result.scores);
    serve::SnapshotMeta meta;
    meta.snapshot_id = stats.epoch;
    meta.ranker_name = "pagerank";
    meta.corpus_name = "stream_e2e";
    SCHOLAR_ASSIGN_OR_RETURN(
        serve::ScoreSnapshot snapshot,
        serve::ScoreSnapshot::Build(graph, ranking, std::move(meta)));
    manager.Install(std::move(snapshot));
    return Status::OK();
  };
  EpochPipeline pipeline(&streaming, &ranker, std::move(publisher));
  ASSERT_TRUE(pipeline.Bootstrap().ok());

  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  serve::Server server(&manager, serve::QueryEngineOptions(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // Background hammer clients: queries that are valid at every epoch. Any
  // dropped connection or non-OK answer counts as a failure.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_answered{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> hammers;
  for (int c = 0; c < 3; ++c) {
    hammers.emplace_back([&stop, &queries_answered, &failures,
                          port = server.port()] {
      TestClient client;
      if (!client.Connect(port)) {
        failures.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string score = client.Query("score 0");
        const std::string info = client.Query("info");
        if (score.rfind("OK ", 0) != 0 || info.rfind("OK ", 0) != 0) {
          failures.fetch_add(1);
          return;
        }
        queries_answered.fetch_add(2);
      }
    });
  }

  TestClient probe;
  ASSERT_TRUE(probe.Connect(server.port()));
  EXPECT_EQ(ParseField(probe.Query("info"), "generation"), 1u);

  // The epoch loop, with the serving plane checked after every republish.
  std::vector<uint64_t> observed_generations = {1};
  size_t nodes_before = streaming.num_nodes();
  for (EdgeBatch& batch : fixture.batches) {
    const size_t new_nodes = batch.num_nodes();
    Result<EpochStats> stats = pipeline.Step(std::move(batch));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_EQ(stats->batches_applied, 1u);

    const std::string info = probe.Query("info");
    ASSERT_EQ(info.rfind("OK ", 0), 0u) << info;
    const uint64_t generation = ParseField(info, "generation");
    const uint64_t snapshot_id = ParseField(info, "snapshot_id");
    // Republish observed: exactly one installation per epoch, immediately
    // visible to a connection opened before the epoch ran.
    EXPECT_EQ(generation, observed_generations.back() + 1);
    EXPECT_EQ(snapshot_id, stats->epoch);
    observed_generations.push_back(generation);

    // Freshness: an article that did not exist before this epoch answers
    // right now — a stale (pre-swap) snapshot would return unknown-id.
    const NodeId newborn = static_cast<NodeId>(nodes_before + new_nodes - 1);
    const std::string newborn_score =
        probe.Query("score " + std::to_string(newborn));
    EXPECT_EQ(newborn_score.rfind("OK ", 0), 0u)
        << "epoch " << stats->epoch << " served stale data for article "
        << newborn << ": " << newborn_score;
    nodes_before += new_nodes;
  }
  ASSERT_EQ(observed_generations.size(), kBatches + 1);

  stop.store(true);
  for (std::thread& t : hammers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(queries_answered.load(), 0u);

  // Served scores == the warm chain's latest vector (what was published),
  // and the warm chain matches a cold rebuild of the final graph within
  // the documented mode=full tolerance.
  const std::vector<double>& warm = ranker.previous_scores();
  ASSERT_EQ(warm.size(), 600u);
  for (NodeId id : {NodeId{0}, NodeId{299}, NodeId{599}}) {
    const std::string line = probe.Query("score " + std::to_string(id));
    ASSERT_EQ(line.rfind("OK ", 0), 0u) << line;
    EXPECT_NEAR(std::strtod(line.c_str() + 3, nullptr), warm[id], 1e-9)
        << "id " << id;
  }
  IncrementalRanker cold = IncrementalRanker::Create(options).value();
  RankResult oracle = cold.RankCold(streaming.graph()).value();
  double max_drift = 0.0;
  for (size_t i = 0; i < warm.size(); ++i) {
    max_drift = std::max(max_drift, std::fabs(warm[i] - oracle.scores[i]));
  }
  EXPECT_LE(max_drift, 1e-8);

  server.Stop();
  server.Wait();
}

TEST(StreamE2eTest, OutOfOrderDeliveryKeepsServingPreviousEpoch) {
  Fixture fixture = MakeFixture(400, 300, 2);
  IncrementalRankerOptions options;
  options.ranker = "pagerank";
  IncrementalRanker ranker = IncrementalRanker::Create(options).value();
  StreamingGraph streaming(fixture.base);
  serve::SnapshotManager manager;
  EpochPublisher publisher =
      [&manager](const CitationGraph& graph, const RankResult& result,
                 const EpochStats& stats) -> Status {
    RankingOutput ranking;
    ranking.scores = result.scores;
    ranking.ranks = ScoresToRanks(result.scores);
    ranking.percentiles = RankPercentiles(result.scores);
    serve::SnapshotMeta meta;
    meta.snapshot_id = stats.epoch;
    SCHOLAR_ASSIGN_OR_RETURN(
        serve::ScoreSnapshot snapshot,
        serve::ScoreSnapshot::Build(graph, ranking, std::move(meta)));
    manager.Install(std::move(snapshot));
    return Status::OK();
  };
  EpochPipeline pipeline(&streaming, &ranker, std::move(publisher));
  ASSERT_TRUE(pipeline.Bootstrap().ok());
  EXPECT_EQ(manager.generation(), 1u);

  // Batch 2 arrives first: staged, nothing republished, old epoch serves.
  Result<EpochStats> staged = pipeline.Step(fixture.batches[1]);
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(staged->batches_applied, 0u);
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_EQ(manager.Current()->snapshot.num_nodes(), 300u);

  // Batch 1 fills the gap: both apply, one republish with the full graph.
  Result<EpochStats> drained = pipeline.Step(fixture.batches[0]);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->batches_applied, 2u);
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_EQ(manager.Current()->snapshot.num_nodes(), 400u);
}

}  // namespace
}  // namespace stream
}  // namespace scholar
