#include "ensemble/normalizer.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(NormalizerTest, MaxDividesByMaximum) {
  auto out = NormalizeScores({1.0, 4.0, 2.0}, NormalizerKind::kMax);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(NormalizerTest, SumMakesDistribution) {
  auto out = NormalizeScores({1.0, 3.0}, NormalizerKind::kSum);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST(NormalizerTest, PercentileGrid) {
  auto out =
      NormalizeScores({0.1, 0.9, 0.5, 0.3}, NormalizerKind::kRankPercentile);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.75);
  EXPECT_DOUBLE_EQ(out[3], 0.5);
  EXPECT_DOUBLE_EQ(out[0], 0.25);
}

TEST(NormalizerTest, ZScoreHasZeroMeanUnitVariance) {
  auto out = NormalizeScores({1.0, 2.0, 3.0, 4.0}, NormalizerKind::kZScore);
  double mean = 0.0;
  for (double v : out) mean += v;
  mean /= out.size();
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (double v : out) var += v * v;
  EXPECT_NEAR(var / out.size(), 1.0, 1e-12);
}

TEST(NormalizerTest, DegenerateInputs) {
  EXPECT_TRUE(NormalizeScores({}, NormalizerKind::kMax).empty());
  // All-zero stays zero under max and sum.
  auto zeros = NormalizeScores({0.0, 0.0}, NormalizerKind::kMax);
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
  zeros = NormalizeScores({0.0, 0.0}, NormalizerKind::kSum);
  EXPECT_DOUBLE_EQ(zeros[1], 0.0);
  // Constant input: z-score collapses to zero; midrank percentile gives
  // every tied article the same shared value ((1.0 + 0.5) / 2 here).
  auto z = NormalizeScores({5.0, 5.0}, NormalizerKind::kZScore);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  auto p = NormalizeScores({5.0, 5.0}, NormalizerKind::kRankPercentile);
  EXPECT_DOUBLE_EQ(p[0], 0.75);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(NormalizerTest, AllKindsPreserveOrdering) {
  std::vector<double> scores = {0.3, 0.9, 0.1, 0.7, 0.5};
  for (auto kind :
       {NormalizerKind::kMax, NormalizerKind::kSum,
        NormalizerKind::kRankPercentile, NormalizerKind::kZScore}) {
    auto out = NormalizeScores(scores, kind);
    for (size_t i = 0; i < scores.size(); ++i) {
      for (size_t j = 0; j < scores.size(); ++j) {
        if (scores[i] > scores[j]) {
          EXPECT_GT(out[i], out[j])
              << NormalizerKindToString(kind) << " " << i << "," << j;
        }
      }
    }
  }
}

TEST(NormalizerTest, StringRoundTrip) {
  for (auto kind :
       {NormalizerKind::kMax, NormalizerKind::kSum,
        NormalizerKind::kRankPercentile, NormalizerKind::kZScore}) {
    EXPECT_EQ(NormalizerKindFromString(NormalizerKindToString(kind)).value(),
              kind);
  }
  EXPECT_TRUE(NormalizerKindFromString("bogus").status().IsInvalidArgument());
}

}  // namespace
}  // namespace scholar
