#include "data/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/profiles.h"
#include "graph/graph_stats.h"

namespace scholar {
namespace {

SyntheticOptions SmallOptions(uint64_t seed = 1) {
  SyntheticOptions o;
  o.num_articles = 3000;
  o.num_years = 15;
  o.seed = seed;
  return o;
}

TEST(SyntheticTest, ProducesRequestedArticleCount) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  EXPECT_EQ(corpus.num_articles(), 3000u);
  EXPECT_TRUE(corpus.ConsistencyCheck().ok());
}

TEST(SyntheticTest, DeterministicInSeed) {
  Corpus a = GenerateSyntheticCorpus(SmallOptions(5), "a").value();
  Corpus b = GenerateSyntheticCorpus(SmallOptions(5), "b").value();
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.true_impact, b.true_impact);
  EXPECT_EQ(a.venues, b.venues);

  Corpus c = GenerateSyntheticCorpus(SmallOptions(6), "c").value();
  EXPECT_FALSE(a.graph == c.graph);
}

TEST(SyntheticTest, YearsAreMonotoneInNodeId) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  for (NodeId u = 1; u < corpus.num_articles(); ++u) {
    EXPECT_LE(corpus.graph.year(u - 1), corpus.graph.year(u));
  }
  EXPECT_EQ(corpus.graph.min_year(), SmallOptions().start_year);
  EXPECT_EQ(corpus.graph.max_year(),
            SmallOptions().start_year + SmallOptions().num_years - 1);
}

TEST(SyntheticTest, CitationsPointToThePast) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  for (NodeId u = 0; u < corpus.num_articles(); ++u) {
    for (NodeId v : corpus.graph.References(u)) {
      EXPECT_LT(v, u);
      EXPECT_LE(corpus.graph.year(v), corpus.graph.year(u));
    }
  }
}

TEST(SyntheticTest, GroundTruthIsPositive) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  ASSERT_TRUE(corpus.has_ground_truth());
  for (double q : corpus.true_impact) EXPECT_GT(q, 0.0);
}

TEST(SyntheticTest, PublicationRateGrows) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  GraphStats stats = ComputeGraphStats(corpus.graph);
  const Year first = corpus.graph.min_year();
  const Year last = corpus.graph.max_year();
  EXPECT_GT(stats.year_histogram.at(last),
            2 * stats.year_histogram.at(first));
}

TEST(SyntheticTest, InDegreeIsHeavyTailed) {
  SyntheticOptions o = SmallOptions();
  o.num_articles = 8000;
  Corpus corpus = GenerateSyntheticCorpus(o, "t").value();
  GraphStats stats = ComputeGraphStats(corpus.graph);
  // Preferential attachment + fitness should concentrate citations.
  EXPECT_GT(stats.in_degree_gini, 0.5);
  EXPECT_GT(stats.max_in_degree, 30u);
}

TEST(SyntheticTest, ImpactCorrelatesWithCitations) {
  SyntheticOptions o = SmallOptions();
  o.num_articles = 8000;
  Corpus corpus = GenerateSyntheticCorpus(o, "t").value();
  // Mean in-degree of top-decile-q articles should exceed the global mean:
  // fitness draws must bias citations toward high-q work.
  std::vector<double> q_sorted = corpus.true_impact;
  std::nth_element(q_sorted.begin(), q_sorted.begin() + q_sorted.size() / 10,
                   q_sorted.end(), std::greater<double>());
  const double q_cut = q_sorted[q_sorted.size() / 10];
  double top_sum = 0.0, all_sum = 0.0;
  size_t top_count = 0;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    all_sum += static_cast<double>(corpus.graph.InDegree(v));
    if (corpus.true_impact[v] >= q_cut) {
      top_sum += static_cast<double>(corpus.graph.InDegree(v));
      ++top_count;
    }
  }
  const double top_mean = top_sum / static_cast<double>(top_count);
  const double all_mean = all_sum / static_cast<double>(corpus.num_articles());
  EXPECT_GT(top_mean, 1.3 * all_mean);
}

TEST(SyntheticTest, AuthorsArePlausible) {
  Corpus corpus = GenerateSyntheticCorpus(SmallOptions(), "t").value();
  ASSERT_TRUE(corpus.has_authors());
  EXPECT_EQ(corpus.authors.num_papers(), corpus.num_articles());
  EXPECT_GT(corpus.authors.num_authors(), 100u);
  // Every article has at least one author.
  for (NodeId p = 0; p < corpus.num_articles(); ++p) {
    EXPECT_GE(corpus.authors.AuthorsOf(p).size(), 1u);
  }
}

TEST(SyntheticTest, RejectsBadOptions) {
  SyntheticOptions o = SmallOptions();
  o.num_articles = 0;
  EXPECT_TRUE(GenerateSyntheticCorpus(o, "t").status().IsInvalidArgument());

  o = SmallOptions();
  o.pref_attach_weight = 0.8;
  o.fitness_weight = 0.5;  // sums beyond 1
  EXPECT_TRUE(GenerateSyntheticCorpus(o, "t").status().IsInvalidArgument());

  o = SmallOptions();
  o.mean_authors = 0.2;
  EXPECT_TRUE(GenerateSyntheticCorpus(o, "t").status().IsInvalidArgument());

  o = SmallOptions();
  o.recency_tau = 0.0;
  EXPECT_TRUE(GenerateSyntheticCorpus(o, "t").status().IsInvalidArgument());
}

TEST(SyntheticTest, FewerArticlesThanYearsStillWorks) {
  SyntheticOptions o = SmallOptions();
  o.num_articles = 5;
  o.num_years = 20;
  Corpus corpus = GenerateSyntheticCorpus(o, "t").value();
  EXPECT_EQ(corpus.num_articles(), 5u);
}

TEST(ProfilesTest, AMinerLikeShape) {
  SyntheticOptions o = AMinerLikeProfile(1000);
  EXPECT_EQ(o.num_articles, 1000u);
  EXPECT_EQ(o.num_years, 30);
  Corpus corpus = GenerateSyntheticCorpus(o, "aminer").value();
  EXPECT_EQ(corpus.num_articles(), 1000u);
}

TEST(ProfilesTest, MagLikeIsBiggerAndFaster) {
  SyntheticOptions aminer = AMinerLikeProfile(1000);
  SyntheticOptions mag = MagLikeProfile(1000);
  EXPECT_GT(mag.growth_rate, aminer.growth_rate);
  EXPECT_GT(mag.mean_references, aminer.mean_references);
  EXPECT_GT(mag.num_venues, aminer.num_venues);
}

TEST(ProfilesTest, LookupByName) {
  EXPECT_TRUE(ProfileByName("aminer", 100, 1).ok());
  EXPECT_TRUE(ProfileByName("MAG", 100, 1).ok());
  EXPECT_TRUE(ProfileByName("dblp", 100, 1).status().IsNotFound());
}

}  // namespace
}  // namespace scholar
