#include "util/config.h"

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(ConfigTest, FromArgsParsesDashedAndPlain) {
  const char* argv[] = {"--sigma=0.4", "-k=8", "ranker=twpr"};
  Config c = Config::FromArgs(3, argv).value();
  EXPECT_DOUBLE_EQ(c.GetDouble("sigma").value(), 0.4);
  EXPECT_EQ(c.GetInt("k").value(), 8);
  EXPECT_EQ(c.GetString("ranker").value(), "twpr");
}

TEST(ConfigTest, FromArgsRejectsMissingEquals) {
  const char* argv[] = {"--verbose"};
  EXPECT_TRUE(Config::FromArgs(1, argv).status().IsInvalidArgument());
}

TEST(ConfigTest, FromArgsRejectsEmptyKey) {
  const char* argv[] = {"--=5"};
  EXPECT_TRUE(Config::FromArgs(1, argv).status().IsInvalidArgument());
}

TEST(ConfigTest, FromStringParsesFileSyntax) {
  Config c = Config::FromString(
                 "# experiment\n"
                 "sigma = 0.5\n"
                 "\n"
                 "slices = 8   # inline comment\n")
                 .value();
  EXPECT_DOUBLE_EQ(c.GetDouble("sigma").value(), 0.5);
  EXPECT_EQ(c.GetInt("slices").value(), 8);
  EXPECT_FALSE(c.Has("# experiment"));
}

TEST(ConfigTest, FromStringRejectsNonAssignments) {
  EXPECT_TRUE(Config::FromString("just words\n").status().IsInvalidArgument());
}

TEST(ConfigTest, TypedSettersAndGetters) {
  Config c;
  c.SetInt("n", 100);
  c.SetDouble("d", 0.85);
  c.SetBool("flag", true);
  c.Set("s", "hello");
  EXPECT_EQ(c.GetInt("n").value(), 100);
  EXPECT_DOUBLE_EQ(c.GetDouble("d").value(), 0.85);
  EXPECT_TRUE(c.GetBool("flag").value());
  EXPECT_EQ(c.GetString("s").value(), "hello");
}

TEST(ConfigTest, MissingKeysAreNotFound) {
  Config c;
  EXPECT_TRUE(c.GetString("nope").status().IsNotFound());
  EXPECT_TRUE(c.GetInt("nope").status().IsNotFound());
  EXPECT_FALSE(c.Has("nope"));
}

TEST(ConfigTest, MalformedValuesAreInvalidArgument) {
  Config c;
  c.Set("n", "abc");
  EXPECT_TRUE(c.GetInt("n").status().IsInvalidArgument());
  c.Set("b", "maybe");
  EXPECT_TRUE(c.GetBool("b").status().IsInvalidArgument());
}

TEST(ConfigTest, BoolAcceptsCommonSpellings) {
  Config c;
  for (const char* t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
    c.Set("b", t);
    EXPECT_TRUE(c.GetBool("b").value()) << t;
  }
  for (const char* f : {"false", "0", "no", "off", "False"}) {
    c.Set("b", f);
    EXPECT_FALSE(c.GetBool("b").value()) << f;
  }
}

TEST(ConfigTest, OrFallbacks) {
  Config c;
  c.SetInt("present", 5);
  EXPECT_EQ(c.GetIntOr("present", 9), 5);
  EXPECT_EQ(c.GetIntOr("absent", 9), 9);
  EXPECT_DOUBLE_EQ(c.GetDoubleOr("absent", 1.5), 1.5);
  EXPECT_EQ(c.GetStringOr("absent", "x"), "x");
  EXPECT_TRUE(c.GetBoolOr("absent", true));
}

TEST(ConfigTest, OverwriteReplacesValue) {
  Config c;
  c.SetInt("k", 1);
  c.SetInt("k", 2);
  EXPECT_EQ(c.GetInt("k").value(), 2);
}

TEST(ConfigTest, KeysAreSortedAndToStringRoundTrips) {
  Config c;
  c.Set("zeta", "1");
  c.Set("alpha", "2");
  auto keys = c.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zeta");

  Config back = Config::FromString(c.ToString()).value();
  EXPECT_EQ(back.GetString("zeta").value(), "1");
  EXPECT_EQ(back.GetString("alpha").value(), "2");
}

}  // namespace
}  // namespace scholar
