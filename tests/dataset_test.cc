#include "data/dataset.h"

#include <sstream>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

constexpr char kAMinerSample[] =
    "#* Foundations of Databases\n"
    "#@ Serge Abiteboul;Richard Hull\n"
    "#t 1995\n"
    "#c Addison-Wesley\n"
    "#index 100\n"
    "\n"
    "#* A Relational Model of Data\n"
    "#@ E. F. Codd\n"
    "#t 1970\n"
    "#c CACM\n"
    "#index 200\n"
    "\n"
    "#* System R\n"
    "#@ Jim Gray;E. F. Codd\n"
    "#t 1976\n"
    "#c SIGMOD\n"
    "#index 300\n"
    "#% 200\n"
    "#% 999\n";

TEST(AMinerReadTest, ParsesRecordsAndCitations) {
  std::stringstream in(kAMinerSample);
  Corpus corpus = ReadAMinerCorpus(&in, "sample").value();
  ASSERT_EQ(corpus.num_articles(), 3u);
  EXPECT_EQ(corpus.name, "sample");
  // Reference to missing #index 999 dropped; 300 -> 200 kept.
  EXPECT_EQ(corpus.num_citations(), 1u);
  EXPECT_TRUE(corpus.graph.HasEdge(2, 1));
  EXPECT_EQ(corpus.graph.year(0), 1995);
  EXPECT_EQ(corpus.graph.year(1), 1970);
  EXPECT_EQ(corpus.titles[1], "A Relational Model of Data");
  EXPECT_EQ(corpus.external_ids[2], 300u);
}

TEST(AMinerReadTest, VenuesAreInterned) {
  std::stringstream in(kAMinerSample);
  Corpus corpus = ReadAMinerCorpus(&in, "sample").value();
  ASSERT_EQ(corpus.venue_names.size(), 3u);
  EXPECT_EQ(corpus.venue_names[corpus.venues[1]], "CACM");
}

TEST(AMinerReadTest, AuthorsAreSharedAcrossPapers) {
  std::stringstream in(kAMinerSample);
  Corpus corpus = ReadAMinerCorpus(&in, "sample").value();
  ASSERT_TRUE(corpus.has_authors());
  // Codd appears on papers 1 and 2 under one author id.
  auto a1 = corpus.authors.AuthorsOf(1);
  auto a2 = corpus.authors.AuthorsOf(2);
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 2u);
  EXPECT_EQ(corpus.authors.PaperCount(a1[0]), 2u);
}

TEST(AMinerReadTest, RecordWithoutIndexIsCorruption) {
  std::stringstream in("#* orphan title\n#t 2000\n\n");
  EXPECT_TRUE(ReadAMinerCorpus(&in, "x").status().IsCorruption());
}

TEST(AMinerReadTest, DuplicateIndexIsCorruption) {
  std::stringstream in("#t 2000\n#index 5\n\n#t 2001\n#index 5\n\n");
  EXPECT_TRUE(ReadAMinerCorpus(&in, "x").status().IsCorruption());
}

TEST(AMinerReadTest, EmptyInputIsCorruption) {
  std::stringstream in("");
  EXPECT_TRUE(ReadAMinerCorpus(&in, "x").status().IsCorruption());
}

TEST(AMinerReadTest, MissingYearFallsBackToCorpusMinimum) {
  std::stringstream in(
      "#t 1990\n#index 1\n\n"
      "#index 2\n\n");
  Corpus corpus = ReadAMinerCorpus(&in, "x").value();
  EXPECT_EQ(corpus.graph.year(1), 1990);
}

TEST(AMinerReadTest, NewIndexStartsNewRecordWithoutBlankLine) {
  std::stringstream in(
      "#index 1\n#t 1990\n"
      "#index 2\n#t 1991\n");
  Corpus corpus = ReadAMinerCorpus(&in, "x").value();
  EXPECT_EQ(corpus.num_articles(), 2u);
}

TEST(AMinerRoundTripTest, WriteThenReadPreservesStructure) {
  std::stringstream in(kAMinerSample);
  Corpus corpus = ReadAMinerCorpus(&in, "sample").value();
  std::stringstream buffer;
  ASSERT_TRUE(WriteAMinerCorpus(corpus, &buffer).ok());
  Corpus back = ReadAMinerCorpus(&buffer, "sample").value();
  EXPECT_EQ(back.graph, corpus.graph);
  EXPECT_EQ(back.external_ids, corpus.external_ids);
  EXPECT_EQ(back.titles, corpus.titles);
  EXPECT_EQ(back.venues, corpus.venues);
  EXPECT_EQ(back.authors.num_links(), corpus.authors.num_links());
}

constexpr char kArticlesTsv[] =
    "0\t1995\tVLDB\talice;bob\n"
    "1\t1998\tSIGMOD\tbob\n"
    "2\t2001\t\t\n";
constexpr char kCitationsTsv[] = "1\t0\n2\t0\n2\t1\n";

TEST(TsvReadTest, ParsesArticlesAndCitations) {
  std::stringstream articles(kArticlesTsv), citations(kCitationsTsv);
  Corpus corpus = ReadTsvCorpus(&articles, &citations, "tsv").value();
  ASSERT_EQ(corpus.num_articles(), 3u);
  EXPECT_EQ(corpus.num_citations(), 3u);
  EXPECT_EQ(corpus.graph.year(2), 2001);
  EXPECT_TRUE(corpus.graph.HasEdge(2, 1));
  EXPECT_EQ(corpus.venues[2], -1);
  EXPECT_EQ(corpus.venue_names[corpus.venues[0]], "VLDB");
  // bob authored papers 0 and 1.
  auto bob_papers =
      corpus.authors.PapersOf(corpus.authors.AuthorsOf(1)[0]);
  EXPECT_EQ(bob_papers.size(), 2u);
}

TEST(TsvReadTest, RejectsNonDenseIds) {
  std::stringstream articles("0\t1990\t\t\n5\t1991\t\t\n");
  std::stringstream citations("");
  EXPECT_TRUE(
      ReadTsvCorpus(&articles, &citations, "x").status().IsCorruption());
}

TEST(TsvReadTest, RejectsDuplicateIds) {
  std::stringstream articles("0\t1990\t\t\n0\t1991\t\t\n");
  std::stringstream citations("");
  EXPECT_TRUE(
      ReadTsvCorpus(&articles, &citations, "x").status().IsCorruption());
}

TEST(TsvReadTest, RejectsOutOfRangeCitation) {
  std::stringstream articles("0\t1990\t\t\n1\t1991\t\t\n");
  std::stringstream citations("1\t7\n");
  EXPECT_TRUE(
      ReadTsvCorpus(&articles, &citations, "x").status().IsCorruption());
}

TEST(TsvRoundTripTest, WriteThenRead) {
  std::stringstream articles(kArticlesTsv), citations(kCitationsTsv);
  Corpus corpus = ReadTsvCorpus(&articles, &citations, "tsv").value();
  std::stringstream a_out, c_out;
  ASSERT_TRUE(WriteTsvCorpus(corpus, &a_out, &c_out).ok());
  Corpus back = ReadTsvCorpus(&a_out, &c_out, "tsv").value();
  EXPECT_EQ(back.graph, corpus.graph);
  EXPECT_EQ(back.venues, corpus.venues);
  EXPECT_EQ(back.authors.num_links(), corpus.authors.num_links());
}

TEST(CorpusConsistencyTest, DetectsSizeMismatch) {
  Corpus corpus;
  corpus.graph = testing_util::MakeTinyGraph();
  corpus.venues = {0, 0};  // wrong size (graph has 5 nodes)
  corpus.venue_names = {"v"};
  EXPECT_TRUE(corpus.ConsistencyCheck().IsCorruption());
}

TEST(CorpusConsistencyTest, DetectsBadVenueIndex) {
  Corpus corpus;
  corpus.graph = testing_util::MakeTinyGraph();
  corpus.venues = {0, 0, 0, 0, 7};  // venue 7 does not exist
  corpus.venue_names = {"v"};
  EXPECT_TRUE(corpus.ConsistencyCheck().IsCorruption());
}

TEST(CorpusConsistencyTest, EmptyOptionalFieldsAreFine) {
  Corpus corpus;
  corpus.graph = testing_util::MakeTinyGraph();
  EXPECT_TRUE(corpus.ConsistencyCheck().ok());
  EXPECT_FALSE(corpus.has_ground_truth());
  EXPECT_FALSE(corpus.has_authors());
}

}  // namespace
}  // namespace scholar
