#include "eval/cohort.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;

TEST(CohortTest, GroupsByYearAscending) {
  CitationGraph g = MakeGraph({2001, 2000, 2001, 2002}, {});
  std::vector<double> scores = {0.4, 0.9, 0.2, 0.6};
  auto cohorts = PercentilesByYear(g, scores);
  ASSERT_EQ(cohorts.size(), 3u);
  EXPECT_EQ(cohorts[0].year, 2000);
  EXPECT_EQ(cohorts[0].count, 1u);
  EXPECT_EQ(cohorts[1].year, 2001);
  EXPECT_EQ(cohorts[1].count, 2u);
  EXPECT_EQ(cohorts[2].year, 2002);
}

TEST(CohortTest, PercentileValues) {
  // Scores: node1 best (pct 1.0), node3 (0.75), node0 (0.5), node2 (0.25).
  CitationGraph g = MakeGraph({2001, 2000, 2001, 2002}, {});
  std::vector<double> scores = {0.4, 0.9, 0.2, 0.6};
  auto cohorts = PercentilesByYear(g, scores);
  EXPECT_DOUBLE_EQ(cohorts[0].mean_percentile, 1.0);           // {node1}
  EXPECT_DOUBLE_EQ(cohorts[1].mean_percentile, (0.5 + 0.25) / 2);
  EXPECT_DOUBLE_EQ(cohorts[2].mean_percentile, 0.75);
}

TEST(CohortTest, MedianOfSingletonEqualsValue) {
  CitationGraph g = MakeGraph({2000}, {});
  auto cohorts = PercentilesByYear(g, {0.5});
  EXPECT_DOUBLE_EQ(cohorts[0].median_percentile, 1.0);
}

TEST(RecencyBiasSlopeTest, FlatCurveHasZeroSlope) {
  std::vector<CohortStats> cohorts(5);
  for (int i = 0; i < 5; ++i) {
    cohorts[i].year = 2000 + i;
    cohorts[i].mean_percentile = 0.5;
  }
  EXPECT_NEAR(RecencyBiasSlope(cohorts), 0.0, 1e-12);
}

TEST(RecencyBiasSlopeTest, DecliningCurveIsNegative) {
  std::vector<CohortStats> cohorts(5);
  for (int i = 0; i < 5; ++i) {
    cohorts[i].year = 2000 + i;
    cohorts[i].mean_percentile = 0.8 - 0.1 * i;
  }
  EXPECT_NEAR(RecencyBiasSlope(cohorts), -0.1, 1e-12);
}

TEST(RecencyBiasSlopeTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(RecencyBiasSlope({}), 0.0);
  std::vector<CohortStats> one(1);
  one[0].year = 2000;
  one[0].mean_percentile = 0.5;
  EXPECT_DOUBLE_EQ(RecencyBiasSlope(one), 0.0);
}

}  // namespace
}  // namespace scholar
