#include "eval/significance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace scholar {
namespace {

std::vector<EvalPair> MakePairs(size_t n) {
  // Pairs (2i, 2i+1): "even beats odd".
  std::vector<EvalPair> pairs;
  for (NodeId i = 0; i < n; ++i) pairs.push_back({2 * i, 2 * i + 1});
  return pairs;
}

TEST(BootstrapTest, PerfectRankerHasDegenerateInterval) {
  const size_t n = 50;
  std::vector<double> scores(2 * n);
  for (size_t i = 0; i < n; ++i) {
    scores[2 * i] = 1.0;
    scores[2 * i + 1] = 0.0;
  }
  BootstrapInterval ci =
      BootstrapPairwiseAccuracy(scores, MakePairs(n)).value();
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BootstrapTest, IntervalBracketsPointEstimate) {
  const size_t n = 200;
  Rng rng(5);
  std::vector<double> scores(2 * n);
  for (double& s : scores) s = rng.NextDouble();
  BootstrapInterval ci =
      BootstrapPairwiseAccuracy(scores, MakePairs(n)).value();
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.lo, ci.hi);
  // Random scores: accuracy near 0.5, CI of ~200 pairs within ~±0.1.
  EXPECT_NEAR(ci.point, 0.5, 0.1);
  EXPECT_LT(ci.hi - ci.lo, 0.25);
}

TEST(BootstrapTest, DeterministicInSeed) {
  const size_t n = 100;
  Rng rng(9);
  std::vector<double> scores(2 * n);
  for (double& s : scores) s = rng.NextDouble();
  BootstrapOptions o;
  o.seed = 42;
  auto a = BootstrapPairwiseAccuracy(scores, MakePairs(n), o).value();
  auto b = BootstrapPairwiseAccuracy(scores, MakePairs(n), o).value();
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, RejectsBadOptions) {
  std::vector<double> scores = {1.0, 0.0};
  std::vector<EvalPair> pairs = {{0, 1}};
  BootstrapOptions o;
  o.num_resamples = 1;
  EXPECT_TRUE(BootstrapPairwiseAccuracy(scores, pairs, o)
                  .status()
                  .IsInvalidArgument());
  o = BootstrapOptions();
  o.confidence = 1.0;
  EXPECT_TRUE(BootstrapPairwiseAccuracy(scores, pairs, o)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      BootstrapPairwiseAccuracy(scores, {}).status().IsInvalidArgument());
}

TEST(ComparePairwiseTest, IdenticalRankersAreNotSignificant) {
  const size_t n = 100;
  Rng rng(11);
  std::vector<double> scores(2 * n);
  for (double& s : scores) s = rng.NextDouble();
  PairedComparison cmp =
      ComparePairwise(scores, scores, MakePairs(n)).value();
  EXPECT_DOUBLE_EQ(cmp.accuracy_a, cmp.accuracy_b);
  EXPECT_EQ(cmp.a_only, 0u);
  EXPECT_EQ(cmp.b_only, 0u);
  EXPECT_DOUBLE_EQ(cmp.p_value, 1.0);
}

TEST(ComparePairwiseTest, DominantRankerIsSignificant) {
  const size_t n = 300;
  std::vector<double> good(2 * n), bad(2 * n);
  Rng rng(13);
  for (size_t i = 0; i < n; ++i) {
    good[2 * i] = 1.0;  // always right
    good[2 * i + 1] = 0.0;
    bad[2 * i] = rng.NextDouble();  // coin flip
    bad[2 * i + 1] = rng.NextDouble();
  }
  PairedComparison cmp = ComparePairwise(good, bad, MakePairs(n)).value();
  EXPECT_GT(cmp.accuracy_a, cmp.accuracy_b);
  EXPECT_GT(cmp.a_only, cmp.b_only);
  EXPECT_LT(cmp.p_value, 0.001);
}

TEST(ComparePairwiseTest, SmallSampleUsesExactTest) {
  // 5 discordant pairs all favoring A: exact p = 2 * (1/2)^5 = 0.0625.
  std::vector<double> a = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  std::vector<double> b = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<EvalPair> pairs;
  for (NodeId i = 0; i < 5; ++i) pairs.push_back({2 * i, 2 * i + 1});
  PairedComparison cmp = ComparePairwise(a, b, pairs).value();
  EXPECT_EQ(cmp.a_only, 5u);
  EXPECT_EQ(cmp.b_only, 0u);
  EXPECT_NEAR(cmp.p_value, 0.0625, 1e-12);
}

TEST(ComparePairwiseTest, SizeMismatchRejected) {
  EXPECT_TRUE(ComparePairwise({1.0}, {1.0, 2.0}, {{0, 0}})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scholar
