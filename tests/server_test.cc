#include "serve/server.h"

#include "serve/request_framer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rank/ranker.h"
#include "test_util.h"

namespace scholar {
namespace serve {
namespace {

using testing_util::MakeTinyGraph;

ScoreSnapshot TinySnapshot(const std::vector<double>& scores, uint64_t id) {
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking;
  ranking.scores = scores;
  ranking.ranks = ScoresToRanks(scores);
  ranking.percentiles = RankPercentiles(scores);
  SnapshotMeta meta;
  meta.snapshot_id = id;
  meta.ranker_name = "twpr";
  meta.corpus_name = "tiny";
  return ScoreSnapshot::Build(graph, ranking, std::move(meta)).value();
}

/// Minimal blocking test client.
class TestClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one line; false on EOF / reset.
  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = pending_.find('\n');
      if (nl != std::string::npos) {
        *line = pending_.substr(0, nl);
        pending_.erase(0, nl + 1);
        return true;
      }
      char buffer[4096];
      ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      pending_.append(buffer, static_cast<size_t>(n));
    }
  }

  std::string Query(const std::string& request) {
    std::string line;
    if (!Send(request + "\n") || !ReadLine(&line)) return "<connection dead>";
    return line;
  }

 private:
  int fd_ = -1;
  std::string pending_;
};

/// Manager + per-worker engine replicas + server on an ephemeral port,
/// ready to dial.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {},
                   QueryEngineOptions engine_options = {}) {
    manager_.Install(TinySnapshot({0.30, 0.10, 0.25, 0.20, 0.15}, 1));
    options.port = 0;
    server_ = std::make_unique<Server>(&manager_, engine_options, options);
    Status status = server_->Start();
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_NE(server_->port(), 0);
  }

  SnapshotManager manager_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, AnswersQueriesOverTcp) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_EQ(client.Query("ping"), "OK pong");
  EXPECT_EQ(client.Query("score 0"), "OK 0.3000000000");
  EXPECT_EQ(client.Query("top_k 2"), "OK 0:0.3000000000 2:0.2500000000");
  EXPECT_EQ(client.Query("score banana"), "ERR bad or unknown id");
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(ServerTest, CarriageReturnLineFeedIsAccepted) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  ASSERT_TRUE(client.Send("ping\r\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "OK pong");
}

TEST_F(ServerTest, PipelinedBurstComesBackInOrder) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  constexpr int kBurst = 500;
  std::string batch;
  for (int i = 0; i < kBurst; ++i) {
    batch += "rank " + std::to_string(i % 5) + "\n";
  }
  ASSERT_TRUE(client.Send(batch));
  const std::vector<std::string> expected = {"OK 0", "OK 4", "OK 1", "OK 2",
                                             "OK 3"};
  std::string line;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    EXPECT_EQ(line, expected[i % 5]) << "response " << i;
  }
}

TEST_F(ServerTest, HotSwapMidConnectionServesNewScoresToOldConnection) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_EQ(client.Query("score 0"), "OK 0.3000000000");

  manager_.Install(TinySnapshot({0.99, 0.01, 0.01, 0.01, 0.01}, 2));

  // Same TCP connection, next request: the new snapshot answers, and the
  // connection never dropped.
  EXPECT_EQ(client.Query("score 0"), "OK 0.9900000000");
  std::string info = client.Query("info");
  EXPECT_NE(info.find("snapshot_id=2"), std::string::npos) << info;
  EXPECT_NE(info.find("generation=2"), std::string::npos) << info;
}

TEST_F(ServerTest, ConcurrentClientsAllGetConsistentAnswers) {
  ServerOptions options;
  options.num_workers = 4;
  StartServer(options);
  constexpr int kClients = 4;
  constexpr int kRequests = 200;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &failures] {
      TestClient client;
      if (!client.Connect(server_->port())) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        if (client.Query("percentile 0") != "OK 1.0000000000") {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->connections_accepted(),
            static_cast<uint64_t>(kClients));
}

TEST_F(ServerTest, StopUnblocksIdleConnections) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_EQ(client.Query("ping"), "OK pong");

  std::thread stopper([this] { server_->Stop(); });
  // The idle connection gets shut down rather than wedging shutdown.
  std::string line;
  EXPECT_FALSE(client.ReadLine(&line));
  stopper.join();
  server_->Wait();  // returns immediately after a completed Stop

  // New connections are refused once stopped.
  TestClient late;
  EXPECT_FALSE(late.Connect(server_->port()));
}

TEST_F(ServerTest, OversizedRequestLineClosesConnection) {
  ServerOptions options;
  options.max_line_bytes = 64;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_TRUE(client.Send(std::string(1000, 'a')));  // no newline
  std::string line;
  EXPECT_FALSE(client.ReadLine(&line));  // server hangs up
}

/// RequestFramer tests drive the exact byte-handling code the server runs,
/// without a socket: partial reads, batched pipelines, and abuse bounds.
class RequestFramerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_.Install(TinySnapshot({0.30, 0.10, 0.25, 0.20, 0.15}, 1));
    engine_ = std::make_unique<QueryEngine>(&manager_);
  }

  SnapshotManager manager_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(RequestFramerTest, RequestSplitAcrossReadsAnswersOnceComplete) {
  RequestFramer framer(engine_.get(), 1 << 16);
  std::string responses;
  // "score 0\n" arrives one byte at a time; no response until the '\n'.
  const std::string request = "score 0\n";
  for (size_t i = 0; i + 1 < request.size(); ++i) {
    ASSERT_TRUE(framer.HandleRequestBytes(
        std::string_view(&request[i], 1), &responses));
    EXPECT_TRUE(responses.empty()) << "answered before newline at byte " << i;
  }
  EXPECT_EQ(framer.pending_bytes(), request.size() - 1);
  ASSERT_TRUE(framer.HandleRequestBytes("\n", &responses));
  EXPECT_EQ(responses, "OK 0.3000000000\n");
  EXPECT_EQ(framer.pending_bytes(), 0u);
}

TEST_F(RequestFramerTest, ManyRequestsInOneChunkAnswerInOrder) {
  RequestFramer framer(engine_.get(), 1 << 16);
  std::string responses;
  ASSERT_TRUE(
      framer.HandleRequestBytes("ping\nrank 0\nrank 1\n", &responses));
  EXPECT_EQ(responses, "OK pong\nOK 0\nOK 4\n");
}

TEST_F(RequestFramerTest, ZeroLengthRequestLineIsAnErrorNotACrash) {
  RequestFramer framer(engine_.get(), 1 << 16);
  std::string responses;
  ASSERT_TRUE(framer.HandleRequestBytes("\n\r\n", &responses));
  // Both the empty line and the bare-CR line produce one error response
  // each; the connection survives.
  EXPECT_EQ(responses, "ERR empty request\nERR empty request\n");
}

TEST_F(RequestFramerTest, ChunkBoundaryInsideCrlfIsHandled) {
  RequestFramer framer(engine_.get(), 1 << 16);
  std::string responses;
  ASSERT_TRUE(framer.HandleRequestBytes("ping\r", &responses));
  EXPECT_TRUE(responses.empty());
  ASSERT_TRUE(framer.HandleRequestBytes("\nping\r\n", &responses));
  EXPECT_EQ(responses, "OK pong\nOK pong\n");
}

TEST_F(RequestFramerTest, OversizedUnterminatedLineCondemnsPermanently) {
  RequestFramer framer(engine_.get(), 16);
  std::string responses;
  // An unterminated line larger than the bound trips the framer even when
  // it arrives in small innocent-looking chunks.
  ASSERT_TRUE(framer.HandleRequestBytes("aaaaaaaaaa", &responses));
  EXPECT_FALSE(framer.HandleRequestBytes("aaaaaaaaaa", &responses));
  // Once condemned, even a well-formed request is refused: the server has
  // already decided to drop this peer.
  responses.clear();
  EXPECT_FALSE(framer.HandleRequestBytes("ping\n", &responses));
  EXPECT_TRUE(responses.empty());
}

TEST_F(RequestFramerTest, CompleteLinesInTheAbusiveChunkStillAnswer) {
  RequestFramer framer(engine_.get(), 16);
  std::string responses;
  // A chunk that both completes a request and leaves an oversized tail:
  // the completed request is answered, the verdict comes from the tail.
  EXPECT_FALSE(framer.HandleRequestBytes(
      "ping\n" + std::string(100, 'a'), &responses));
  EXPECT_EQ(responses, "OK pong\n");
}

TEST(ServerLifecycleTest, StartTwiceFails) {
  SnapshotManager manager;
  ServerOptions options;
  options.port = 0;
  Server server(&manager, QueryEngineOptions{}, options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
}

TEST(ServerLifecycleTest, DestructorStopsCleanly) {
  SnapshotManager manager;
  ServerOptions options;
  options.port = 0;
  auto server = std::make_unique<Server>(&manager, QueryEngineOptions{},
                                         options);
  ASSERT_TRUE(server->Start().ok());
  server.reset();  // no hang, no leak (ASan-verified)
}

TEST(ServerLifecycleTest, MultipleWorkersRequireReusePort) {
  SnapshotManager manager;
  ServerOptions options;
  options.port = 0;
  options.num_workers = 2;
  options.reuse_port = false;
  Server server(&manager, QueryEngineOptions{}, options);
  Status status = server.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST(ServerLifecycleTest, ZeroWorkersIsInvalid) {
  SnapshotManager manager;
  ServerOptions options;
  options.port = 0;
  options.num_workers = 0;
  Server server(&manager, QueryEngineOptions{}, options);
  EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
}

TEST(ServerLifecycleTest, SingleWorkerWithoutReusePortStillServes) {
  SnapshotManager manager;
  ServerOptions options;
  options.port = 0;
  options.num_workers = 1;
  options.reuse_port = false;
  Server server(&manager, QueryEngineOptions{}, options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  EXPECT_EQ(client.Query("ping"), "OK pong");
  server.Stop();
}

/// Option-plumbing coverage: the listener-level ServerOptions fields must
/// actually land on the socket, both polarities, observable via getsockopt.
class ListenerOptionsTest : public ::testing::TestWithParam<bool> {};

TEST_P(ListenerOptionsTest, ReuseFlagsReachTheSocket) {
  const bool enabled = GetParam();
  ServerOptions options;
  options.reuse_addr = enabled;
  options.reuse_port = enabled;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(ApplyListenerOptions(fd, options).ok());

  int value = -1;
  socklen_t len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &value, &len), 0);
  EXPECT_EQ(value != 0, enabled);
  value = -1;
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &value, &len), 0);
  EXPECT_EQ(value != 0, enabled);
  ::close(fd);
}

INSTANTIATE_TEST_SUITE_P(BothPolarities, ListenerOptionsTest,
                         ::testing::Values(false, true));

TEST_F(ServerTest, NodelayOffStillAnswers) {
  // TCP_NODELAY is applied per accepted socket inside the worker; the
  // observable contract for the off-polarity is simply that the server
  // still answers correctly (just with Nagle re-enabled).
  ServerOptions options;
  options.tcp_nodelay = false;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_EQ(client.Query("ping"), "OK pong");
}

TEST_F(ServerTest, StatsVerbReportsMergedCounters) {
  ServerOptions options;
  options.num_workers = 2;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));
  EXPECT_EQ(client.Query("ping"), "OK pong");
  EXPECT_EQ(client.Query("score 0"), "OK 0.3000000000");

  const std::string stats = client.Query("stats");
  EXPECT_EQ(stats.rfind("OK workers=2 ", 0), 0u) << stats;
  // ping + score + this stats request have all been counted by the time
  // the response renders.
  EXPECT_NE(stats.find(" served=3 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" shed=0 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" p99_ns="), std::string::npos) << stats;
}

TEST_F(ServerTest, OverloadShedsWithTypedBusyResponses) {
  // A per-connection batch bound of 8 with a 100-deep pipeline forces the
  // server to shed: every request is answered (in order), none silently
  // dropped, and everything beyond the bound in one drain is a BUSY line.
  ServerOptions options;
  options.max_batch_requests = 8;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(server_->port()));

  constexpr int kPipeline = 100;
  std::string burst;
  for (int i = 0; i < kPipeline; ++i) burst += "ping\n";
  ASSERT_TRUE(client.Send(burst));

  int ok = 0, busy = 0;
  std::string line;
  for (int i = 0; i < kPipeline; ++i) {
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    if (line == "OK pong") {
      ++ok;
    } else if (line == "BUSY") {
      ++busy;
    } else {
      FAIL() << "unexpected response " << i << ": " << line;
    }
  }
  // TCP may split the burst across several drains (each re-arming the
  // batch budget), so the exact split is not deterministic — but the
  // accounting invariants are.
  EXPECT_EQ(ok + busy, kPipeline);
  EXPECT_GE(ok, 8);
  EXPECT_GT(busy, 0) << "a 100-deep pipeline must overflow a bound of 8";
  EXPECT_EQ(server_->requests_shed(), static_cast<uint64_t>(busy));
  EXPECT_EQ(server_->requests_served(), static_cast<uint64_t>(ok));
}

TEST_F(ServerTest, MultiWorkerHotSwapServesOnlyLiveGenerations) {
  // Satellite regression: per-worker replicas hammered over TCP while the
  // shared manager hot-swaps growing snapshots. No response may be dropped
  // and no client may observe time going backwards — the best score grows
  // with each install, so each connection's view must be nondecreasing.
  ServerOptions options;
  options.num_workers = 2;
  StartServer(options);

  constexpr int kClients = 4;
  constexpr int kSwaps = 12;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &done, &failures] {
      TestClient client;
      if (!client.Connect(server_->port())) {
        failures.fetch_add(1);
        return;
      }
      double last_best = 0.0;
      while (!done.load(std::memory_order_acquire)) {
        const std::string top = client.Query("top_k 1");
        if (top.rfind("OK ", 0) != 0) {
          failures.fetch_add(1);
          return;
        }
        const size_t colon = top.find(':');
        if (colon == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
        const double best = std::stod(top.substr(colon + 1));
        if (best + 1e-12 < last_best) {
          failures.fetch_add(1);  // stale page from before a swap
          return;
        }
        last_best = best;
      }
    });
  }

  std::vector<double> scores = {0.30, 0.10, 0.25, 0.20, 0.15};
  for (int swap = 1; swap <= kSwaps; ++swap) {
    scores[0] = 0.30 + 0.05 * swap;  // node 0 stays best, score grows
    manager_.Install(TinySnapshot(scores, static_cast<uint64_t>(swap)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_shed(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace scholar
