#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(GraphTextIoTest, RoundTripTiny) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(g, &buffer).ok());
  CitationGraph back = ReadGraphText(&buffer).value();
  EXPECT_EQ(back, g);
}

TEST(GraphTextIoTest, RoundTripEmpty) {
  CitationGraph g;
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(g, &buffer).ok());
  CitationGraph back = ReadGraphText(&buffer).value();
  EXPECT_EQ(back.num_nodes(), 0u);
}

TEST(GraphTextIoTest, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "#scholarrank-graph-v1\n"
      "# a comment\n"
      "2 1\n"
      "\n"
      "2000\n"
      "# another\n"
      "2001\n"
      "1 0\n");
  CitationGraph g = ReadGraphText(&in).value();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTextIoTest, RejectsMissingSignature) {
  std::stringstream in("2 0\n2000\n2001\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsTruncatedYears) {
  std::stringstream in("#scholarrank-graph-v1\n3 0\n2000\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsTruncatedEdges) {
  std::stringstream in("#scholarrank-graph-v1\n2 2\n2000\n2001\n1 0\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsOutOfRangeEdge) {
  std::stringstream in("#scholarrank-graph-v1\n2 1\n2000\n2001\n1 7\n");
  EXPECT_FALSE(ReadGraphText(&in).ok());
}

TEST(GraphTextIoTest, RejectsMalformedEdgeLine) {
  std::stringstream in("#scholarrank-graph-v1\n2 1\n2000\n2001\n1 0 9\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphBinaryIoTest, RoundTripTiny) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  CitationGraph back = ReadGraphBinary(&buffer).value();
  EXPECT_EQ(back, g);
}

TEST(GraphBinaryIoTest, RejectsBadMagic) {
  std::stringstream buffer("XXXXjunkjunkjunk");
  EXPECT_TRUE(ReadGraphBinary(&buffer).status().IsCorruption());
}

TEST(GraphBinaryIoTest, RejectsTruncatedPayload) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data,
                              std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_TRUE(ReadGraphBinary(&truncated).status().IsCorruption());
}

TEST(GraphIoFileTest, FileRoundTripBothFormats) {
  CitationGraph g = MakeRandomGraph(100, 3.0, 1995, 8, 5);
  const std::string text_path = ::testing::TempDir() + "/g.txt";
  const std::string bin_path = ::testing::TempDir() + "/g.bin";
  ASSERT_TRUE(WriteGraphTextFile(g, text_path).ok());
  ASSERT_TRUE(WriteGraphBinaryFile(g, bin_path).ok());
  EXPECT_EQ(ReadGraphTextFile(text_path).value(), g);
  EXPECT_EQ(ReadGraphBinaryFile(bin_path).value(), g);
}

TEST(GraphIoFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadGraphTextFile("/nonexistent/g.txt").status().IsIOError());
  EXPECT_TRUE(ReadGraphBinaryFile("/nonexistent/g.bin").status().IsIOError());
}

class GraphIoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphIoPropertyTest, TextAndBinaryAgree) {
  CitationGraph g = MakeRandomGraph(150, 4.0, 1990, 12, GetParam());
  std::stringstream text_buf, bin_buf(std::ios::in | std::ios::out |
                                      std::ios::binary);
  ASSERT_TRUE(WriteGraphText(g, &text_buf).ok());
  ASSERT_TRUE(WriteGraphBinary(g, &bin_buf).ok());
  CitationGraph from_text = ReadGraphText(&text_buf).value();
  CitationGraph from_bin = ReadGraphBinary(&bin_buf).value();
  EXPECT_EQ(from_text, g);
  EXPECT_EQ(from_bin, g);
  EXPECT_EQ(from_text, from_bin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoPropertyTest,
                         ::testing::Values(1, 7, 23, 101));

}  // namespace
}  // namespace scholar
