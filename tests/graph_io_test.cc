#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(GraphTextIoTest, RoundTripTiny) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(g, &buffer).ok());
  CitationGraph back = ReadGraphText(&buffer).value();
  EXPECT_EQ(back, g);
}

TEST(GraphTextIoTest, RoundTripEmpty) {
  CitationGraph g;
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(g, &buffer).ok());
  CitationGraph back = ReadGraphText(&buffer).value();
  EXPECT_EQ(back.num_nodes(), 0u);
}

TEST(GraphTextIoTest, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "#scholarrank-graph-v1\n"
      "# a comment\n"
      "2 1\n"
      "\n"
      "2000\n"
      "# another\n"
      "2001\n"
      "1 0\n");
  CitationGraph g = ReadGraphText(&in).value();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTextIoTest, RejectsMissingSignature) {
  std::stringstream in("2 0\n2000\n2001\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsTruncatedYears) {
  std::stringstream in("#scholarrank-graph-v1\n3 0\n2000\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsTruncatedEdges) {
  std::stringstream in("#scholarrank-graph-v1\n2 2\n2000\n2001\n1 0\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsOutOfRangeEdge) {
  std::stringstream in("#scholarrank-graph-v1\n2 1\n2000\n2001\n1 7\n");
  EXPECT_FALSE(ReadGraphText(&in).ok());
}

TEST(GraphTextIoTest, RejectsMalformedEdgeLine) {
  std::stringstream in("#scholarrank-graph-v1\n2 1\n2000\n2001\n1 0 9\n");
  EXPECT_TRUE(ReadGraphText(&in).status().IsCorruption());
}

TEST(GraphTextIoTest, RejectsNegativeYear) {
  std::stringstream in("#scholarrank-graph-v1\n2 0\n2000\n-5\n");
  Status s = ReadGraphText(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("implausible year -5"), std::string::npos) << s.ToString();
  // The bad year sits on source line 4 (signature, counts, node 0, node 1).
  EXPECT_NE(s.message().find("line 4"), std::string::npos) << s.ToString();
}

TEST(GraphTextIoTest, RejectsAbsurdlyLargeYear) {
  std::stringstream in("#scholarrank-graph-v1\n1 0\n99999999999\n");
  Status s = ReadGraphText(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("implausible year"), std::string::npos) << s.ToString();
}

TEST(GraphTextIoTest, AcceptsUnknownYearSentinel) {
  std::stringstream in("#scholarrank-graph-v1\n1 0\n" +
                       std::to_string(kUnknownYear) + "\n");
  CitationGraph g = ReadGraphText(&in).value();
  EXPECT_EQ(g.year(0), kUnknownYear);
}

TEST(GraphTextIoTest, RejectsSelfLoopWithLineNumber) {
  std::stringstream in("#scholarrank-graph-v1\n2 2\n2000\n2001\n1 0\n1 1\n");
  Status s = ReadGraphText(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("self-loop citation at node 1"),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("line 6"), std::string::npos) << s.ToString();
}

TEST(GraphTextIoTest, RejectsDuplicateEdgeWithLineNumber) {
  std::stringstream in(
      "#scholarrank-graph-v1\n3 3\n2000\n2001\n2002\n2 0\n2 1\n2 0\n");
  Status s = ReadGraphText(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("duplicate edge 2 -> 0"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("line 8"), std::string::npos) << s.ToString();
}

TEST(GraphTextIoTest, RejectsEdgeIdAboveNodeIdRange) {
  // 2^32 + 1 must fail the int64 range check, not wrap to node 1.
  std::stringstream in("#scholarrank-graph-v1\n2 1\n2000\n2001\n4294967297 0\n");
  Status s = ReadGraphText(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("out of range"), std::string::npos) << s.ToString();
}

TEST(GraphBinaryIoTest, RoundTripTiny) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  CitationGraph back = ReadGraphBinary(&buffer).value();
  EXPECT_EQ(back, g);
}

TEST(GraphBinaryIoTest, RejectsBadMagic) {
  std::stringstream buffer("XXXXjunkjunkjunk");
  EXPECT_TRUE(ReadGraphBinary(&buffer).status().IsCorruption());
}

TEST(GraphBinaryIoTest, RejectsTruncatedPayload) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data,
                              std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_TRUE(ReadGraphBinary(&truncated).status().IsCorruption());
}

TEST(GraphBinaryIoTest, RejectsImplausibleYearPayload) {
  CitationGraph g = MakeTinyGraph();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  std::string data = buffer.str();
  // Overwrite node 0's year (first element after the 4-byte magic and two
  // u64 counts) with a nonsense value.
  const int32_t bogus = -123456;
  data.replace(4 + 16, sizeof(bogus),
               reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  std::stringstream patched(data,
                            std::ios::in | std::ios::out | std::ios::binary);
  Status s = ReadGraphBinary(&patched).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("implausible year"), std::string::npos) << s.ToString();
}

TEST(GraphBinaryIoTest, RejectsAbsurdDeclaredCounts) {
  // A header declaring 2^40 nodes must fail the plausibility bound rather
  // than attempt a terabyte allocation.
  std::string data = "SRG1";
  const uint64_t n = uint64_t{1} << 40;
  const uint64_t m = 0;
  data.append(reinterpret_cast<const char*>(&n), sizeof(n));
  data.append(reinterpret_cast<const char*>(&m), sizeof(m));
  std::stringstream in(data, std::ios::in | std::ios::out | std::ios::binary);
  Status s = ReadGraphBinary(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("implausible"), std::string::npos) << s.ToString();
}

TEST(GraphIoFileTest, FileRoundTripBothFormats) {
  CitationGraph g = MakeRandomGraph(100, 3.0, 1995, 8, 5);
  const std::string text_path = ::testing::TempDir() + "/g.txt";
  const std::string bin_path = ::testing::TempDir() + "/g.bin";
  ASSERT_TRUE(WriteGraphTextFile(g, text_path).ok());
  ASSERT_TRUE(WriteGraphBinaryFile(g, bin_path).ok());
  EXPECT_EQ(ReadGraphTextFile(text_path).value(), g);
  EXPECT_EQ(ReadGraphBinaryFile(bin_path).value(), g);
}

TEST(GraphIoFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadGraphTextFile("/nonexistent/g.txt").status().IsIOError());
  EXPECT_TRUE(ReadGraphBinaryFile("/nonexistent/g.bin").status().IsIOError());
}

class GraphIoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphIoPropertyTest, TextAndBinaryAgree) {
  CitationGraph g = MakeRandomGraph(150, 4.0, 1990, 12, GetParam());
  std::stringstream text_buf, bin_buf(std::ios::in | std::ios::out |
                                      std::ios::binary);
  ASSERT_TRUE(WriteGraphText(g, &text_buf).ok());
  ASSERT_TRUE(WriteGraphBinary(g, &bin_buf).ok());
  CitationGraph from_text = ReadGraphText(&text_buf).value();
  CitationGraph from_bin = ReadGraphBinary(&bin_buf).value();
  EXPECT_EQ(from_text, g);
  EXPECT_EQ(from_bin, g);
  EXPECT_EQ(from_text, from_bin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoPropertyTest,
                         ::testing::Values(1, 7, 23, 101));

}  // namespace
}  // namespace scholar
