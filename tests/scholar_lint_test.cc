// Drives the scholar_lint binary against the committed fixture snippets in
// tests/lint_fixtures/, proving each rule both fires on a violation and
// stays quiet on compliant code / NOLINT'd lines. The fixture tree mirrors
// src/ paths because several rules are path-scoped (float-compare only
// applies under src/rank/ and src/ensemble/, raw-stdout under src/).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

#ifndef SCHOLAR_LINT_BIN
#error "SCHOLAR_LINT_BIN must point at the scholar_lint executable"
#endif
#ifndef SCHOLAR_LINT_FIXTURES
#error "SCHOLAR_LINT_FIXTURES must point at tests/lint_fixtures"
#endif

struct LintRun {
  int exit_code;
  std::string output;
};

std::string Fixture(const std::string& rel) {
  return std::string(SCHOLAR_LINT_FIXTURES) + "/" + rel;
}

/// Runs the linter over `files` and captures combined stdout + exit code.
LintRun RunLint(const std::vector<std::string>& files) {
  std::string cmd = std::string(SCHOLAR_LINT_BIN);
  for (const std::string& f : files) cmd += " " + f;
  cmd += " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintRun run{-1, {}};
  if (pipe == nullptr) return run;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ScholarLintTest, FloatCompareFiresOnEveryViolation) {
  LintRun run = RunLint({Fixture("src/rank/bad_float_compare.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "float-compare:"), 3u) << run.output;
  EXPECT_NE(run.output.find("bad_float_compare.cc:8:"), std::string::npos)
      << run.output;
}

TEST(ScholarLintTest, FloatCompareQuietOnToleranceAndNolint) {
  LintRun run = RunLint({Fixture("src/rank/good_float_compare.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, MutexGuardFiresOnNakedMutexMembers) {
  LintRun run = RunLint({Fixture("src/serve/bad_mutex_member.h")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // One diagnosis for the std::mutex member, one for the scholar::Mutex.
  EXPECT_EQ(CountOccurrences(run.output, "mutex-guard:"), 2u) << run.output;
}

TEST(ScholarLintTest, MutexGuardQuietOnAnnotatedClasses) {
  LintRun run = RunLint({Fixture("src/serve/good_mutex_member.h")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, RngRuleFiresOnAdHocRandomness) {
  LintRun run = RunLint({Fixture("src/util/bad_rng.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // srand, mt19937, random_device, rand.
  EXPECT_EQ(CountOccurrences(run.output, "unseeded-rng:"), 4u) << run.output;
}

TEST(ScholarLintTest, RawStdoutFiresInLibraryCode) {
  LintRun run = RunLint({Fixture("src/core/bad_stdout.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "raw-stdout:"), 2u) << run.output;
}

TEST(ScholarLintTest, IncludeOrderFiresWhenOwnHeaderIsNotFirst) {
  LintRun run = RunLint({Fixture("src/graph/bad_include_order.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "include-order:"), 1u) << run.output;
}

TEST(ScholarLintTest, IncludeOrderQuietWhenOwnHeaderIsFirst) {
  LintRun run = RunLint({Fixture("src/graph/good_include_order.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, NolintSuppressesBareAndRuleScoped) {
  LintRun run = RunLint({Fixture("src/serve/nolint_suppressed.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, NolintWithWrongRuleDoesNotSuppress) {
  LintRun run = RunLint({Fixture("src/serve/nolint_mismatch.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "raw-stdout:"), 1u) << run.output;
  // The wrong-rule marker also suppresses nothing, so it is itself stale.
  EXPECT_EQ(CountOccurrences(run.output, "stale-nolint:"), 1u) << run.output;
}

TEST(ScholarLintTest, StaleNolintFiresOnDeadSuppressionOnly) {
  // One dead NOLINT(raw-stdout) fires; the live NOLINT(unseeded-rng) and a
  // marker naming another tool's rule (determinism) stay quiet.
  LintRun run = RunLint({Fixture("src/serve/stale_nolint.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "stale-nolint:"), 1u) << run.output;
  EXPECT_NE(run.output.find("NOLINT(raw-stdout) suppresses nothing"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("unseeded-rng:"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("determinism"), std::string::npos) << run.output;
}

TEST(ScholarLintTest, StaleNolintQuietWhenEveryMarkerIsLive) {
  // All-live suppression fixtures must stay clean under the audit.
  LintRun run = RunLint({Fixture("src/serve/nolint_suppressed.cc"),
                         Fixture("src/rank/nolint_intrinsics.cc"),
                         Fixture("src/serve/nolint_layering.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, MaterializeSnapshotFiresOutsideTimeSlicer) {
  LintRun run = RunLint({Fixture("src/ensemble/bad_materialize.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "materialize-snapshot:"), 2u)
      << run.output;
}

TEST(ScholarLintTest, MaterializeSnapshotQuietOnNolintAndNonCalls) {
  LintRun run = RunLint({Fixture("src/ensemble/good_materialize.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, MaterializeSnapshotQuietInsideTimeSlicer) {
  LintRun run = RunLint({Fixture("src/graph/time_slicer.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, IncludeLayeringFiresOnInvertedServeToCliEdge) {
  LintRun run = RunLint({Fixture("src/serve/bad_layering.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The downward includes (util, graph, core) are legal; only the
  // serve -> cli back-edge fires.
  EXPECT_EQ(CountOccurrences(run.output, "include-layering:"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("cli/commands.h"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("bad_layering.cc:10:"), std::string::npos)
      << run.output;
}

TEST(ScholarLintTest, IncludeLayeringFiresOnStreamToServeAndCliEdges) {
  LintRun run = RunLint({Fixture("src/stream/bad_layering.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // util/graph/rank/core point down and are legal; the serve and cli
  // includes are the two back-edges out of the new stream layer.
  EXPECT_EQ(CountOccurrences(run.output, "include-layering:"), 2u)
      << run.output;
  EXPECT_NE(run.output.find("serve/snapshot_manager.h"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("cli/commands.h"), std::string::npos)
      << run.output;
}

TEST(ScholarLintTest, IncludeLayeringQuietOnStreamDownwardIncludes) {
  LintRun run = RunLint({Fixture("src/stream/good_layering.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, IncludeLayeringQuietOnServeConsumingStream) {
  LintRun run = RunLint({Fixture("src/serve/good_stream_include.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, IncludeLayeringSuppressedByNolintOnIncludeLine) {
  LintRun run = RunLint({Fixture("src/serve/nolint_layering.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, UncheckedReadFiresOnMemcpyAndMutableCast) {
  LintRun run = RunLint({Fixture("src/graph/graph_io_bad_read.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-read:"), 2u)
      << run.output;
  EXPECT_NE(run.output.find("memcpy"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("reinterpret_cast"), std::string::npos)
      << run.output;
}

TEST(ScholarLintTest, UncheckedReadQuietOnConstCastAndNolint) {
  LintRun run = RunLint({Fixture("src/graph/graph_io_good_read.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, UncheckedReadScopedToParserFiles) {
  // The same raw memcpy that fires in graph_io is fine between trusted
  // in-memory buffers in rank/.
  LintRun run = RunLint({Fixture("src/rank/raw_copy_ok.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, RawIntrinsicsFiresOutsideKernelDir) {
  LintRun run = RunLint({Fixture("src/rank/bad_intrinsics.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The <immintrin.h> include, the __m256d type, and the two _mm256_*
  // calls each fire.
  EXPECT_EQ(CountOccurrences(run.output, "raw-intrinsics:"), 4u)
      << run.output;
  EXPECT_NE(run.output.find("immintrin.h"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("__m256d"), std::string::npos) << run.output;
}

TEST(ScholarLintTest, RawIntrinsicsQuietInsideKernelDir) {
  LintRun run = RunLint({Fixture("src/rank/kernel/good_intrinsics.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, RawIntrinsicsSuppressedByNolint) {
  LintRun run = RunLint({Fixture("src/rank/nolint_intrinsics.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, MultiFileRunIsNonzeroIfAnyFileViolates) {
  LintRun run = RunLint({Fixture("src/graph/good_include_order.cc"),
                         Fixture("src/core/bad_stdout.cc"),
                         Fixture("src/rank/good_float_compare.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Only the bad file contributes diagnostics.
  EXPECT_EQ(CountOccurrences(run.output, "bad_stdout.cc:"), 2u) << run.output;
  EXPECT_EQ(run.output.find("good_"), std::string::npos) << run.output;
}

TEST(ScholarLintTest, AllGoodFilesExitZero) {
  LintRun run = RunLint({Fixture("src/graph/good_include_order.cc"),
                         Fixture("src/serve/good_mutex_member.h"),
                         Fixture("src/rank/good_float_compare.cc")});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(ScholarLintTest, MissingFileExitsWithUsageError) {
  LintRun run = RunLint({Fixture("src/does_not_exist.cc")});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
