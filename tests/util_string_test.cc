#include "util/string_util.h"

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");

  parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");

  parts = Split(",", ',');
  ASSERT_EQ(parts.size(), 2u);
}

TEST(SplitTest, SkipEmptyDropsBlanks) {
  auto parts = SplitSkipEmpty("  a   b  ", ' ');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_TRUE(SplitSkipEmpty("   ", ' ').empty());
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi\r "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("#index 5", "#index"));
  EXPECT_FALSE(StartsWith("#ind", "#index"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("graph.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", ".bin"));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13  ").value(), 13);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("  ").ok());
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.85").value(), 0.85);
  EXPECT_DOUBLE_EQ(ParseDouble("-3").value(), -3.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e-10").value(), 1e-10);
  EXPECT_DOUBLE_EQ(ParseDouble(" 2.5 ").value(), 2.5);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.5fun").ok());
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("PageRank"), "pagerank");
  EXPECT_EQ(ToLower("ens_TWPR"), "ens_twpr");
  EXPECT_EQ(ToLower("123-x"), "123-x");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(-0.1, 1), "-0.1");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1247753), "1,247,753");
  EXPECT_EQ(FormatWithCommas(-4321), "-4,321");
}

}  // namespace
}  // namespace scholar
