#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad sigma");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad sigma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad sigma");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::Corruption("x").IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(bad.ValueOr(-1), -1);
  Result<int> good = 7;
  EXPECT_EQ(good.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SCHOLAR_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SCHOLAR_ASSIGN_OR_RETURN(int h, Half(x));
  SCHOLAR_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacroTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, DeathOnBadAccess) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace scholar
