#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.Header({"method", "accuracy"});
  writer.Row().Add("pagerank").Add(0.75);
  writer.Row().Add("twpr").Add(int64_t{42});
  EXPECT_EQ(writer.rows_written(), 2u);
  EXPECT_EQ(out.str(), "method,accuracy\npagerank,0.750000\ntwpr,42\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.Row().Add("a,b").Add("say \"hi\"").Add("plain");
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(CsvWriterTest, MixedNumericTypes) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.Row().Add(1).Add(uint64_t{2}).Add(-3.5);
  EXPECT_EQ(out.str(), "1,2,-3.500000\n");
}

TEST(ParseCsvLineTest, SimpleFields) {
  auto fields = ParseCsvLine("a,b,c").value();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLineTest, EmptyFieldsPreserved) {
  auto fields = ParseCsvLine("a,,c,").value();
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLineTest, QuotedFields) {
  auto fields = ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\"").value();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(ParseCsvLineTest, RoundTripsWithWriter) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.Row().Add("x,y").Add("\"quoted\"").Add("normal");
  std::string line = out.str();
  line.pop_back();  // strip trailing newline
  auto fields = ParseCsvLine(line).value();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "\"quoted\"");
  EXPECT_EQ(fields[2], "normal");
}

TEST(ParseCsvLineTest, ErrorsOnMalformedQuotes) {
  EXPECT_TRUE(ParseCsvLine("\"unterminated").status().IsCorruption());
  EXPECT_TRUE(ParseCsvLine("ab\"cd").status().IsCorruption());
}

}  // namespace
}  // namespace scholar
