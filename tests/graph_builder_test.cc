#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(GraphBuilderTest, EmptyBuild) {
  GraphBuilder builder;
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.min_year(), kUnknownYear);
}

TEST(GraphBuilderTest, NodesGetSequentialIds) {
  GraphBuilder builder;
  EXPECT_EQ(builder.AddNode(2000), 0u);
  EXPECT_EQ(builder.AddNode(2001), 1u);
  EXPECT_EQ(builder.AddNodes(3, 2002), 2u);
  EXPECT_EQ(builder.num_nodes(), 5u);
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.year(0), 2000);
  EXPECT_EQ(g.year(4), 2002);
  EXPECT_EQ(g.min_year(), 2000);
  EXPECT_EQ(g.max_year(), 2002);
}

TEST(GraphBuilderTest, BasicEdges) {
  GraphBuilder builder;
  builder.AddNodes(3, 2000);
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(2), 2u);
  EXPECT_EQ(g.InDegree(0), 2u);
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphBuilderTest, EdgeToUnknownNodeFails) {
  GraphBuilder builder;
  builder.AddNodes(2, 2000);
  EXPECT_TRUE(builder.AddEdge(0, 5).IsInvalidArgument());
  EXPECT_TRUE(builder.AddEdge(5, 0).IsInvalidArgument());
}

TEST(GraphBuilderTest, SelfLoopsDroppedByDefault) {
  GraphBuilder builder;
  builder.AddNodes(2, 2000);
  ASSERT_TRUE(builder.AddEdge(1, 1).ok());  // dropped silently
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, SelfLoopsRejectedWhenConfigured) {
  GraphBuilder builder(GraphBuilder::Options{.drop_self_loops = false});
  builder.AddNodes(2, 2000);
  EXPECT_TRUE(builder.AddEdge(1, 1).IsInvalidArgument());
}

TEST(GraphBuilderTest, ParallelEdgesDedupedByDefault) {
  GraphBuilder builder;
  builder.AddNodes(2, 2000);
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, ParallelEdgesRejectedWhenConfigured) {
  GraphBuilder builder(
      GraphBuilder::Options{.dedup_parallel_edges = false});
  builder.AddNodes(2, 2000);
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  EXPECT_TRUE(std::move(builder).Build().status().IsInvalidArgument());
}

TEST(GraphBuilderTest, BackwardTimeEdgesAllowedByDefault) {
  GraphBuilder builder;
  builder.AddNode(2000);
  builder.AddNode(2010);
  // Article 0 (2000) citing article 1 (2010): dirty but accepted.
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, BackwardTimeEdgesRejectedWhenConfigured) {
  GraphBuilder builder(
      GraphBuilder::Options{.forbid_backward_time_edges = true});
  builder.AddNode(2000);
  builder.AddNode(2010);
  EXPECT_TRUE(builder.AddEdge(0, 1).IsInvalidArgument());
  EXPECT_TRUE(builder.AddEdge(1, 0).ok());   // forward in time
  builder.AddNode(2010);
  EXPECT_TRUE(builder.AddEdge(2, 1).ok());   // same year is fine
}

TEST(GraphBuilderTest, AdjacencyListsAreSorted) {
  GraphBuilder builder;
  builder.AddNodes(5, 2000);
  ASSERT_TRUE(builder.AddEdge(4, 3).ok());
  ASSERT_TRUE(builder.AddEdge(4, 0).ok());
  ASSERT_TRUE(builder.AddEdge(4, 2).ok());
  CitationGraph g = std::move(builder).Build().value();
  auto refs = g.References(4);
  EXPECT_TRUE(std::is_sorted(refs.begin(), refs.end()));
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0], 0u);
  EXPECT_EQ(refs[2], 3u);
}

TEST(GraphBuilderTest, AddEdgesBulk) {
  GraphBuilder builder;
  builder.AddNodes(4, 2000);
  ASSERT_TRUE(builder.AddEdges({{1, 0}, {2, 0}, {3, 1}}).ok());
  EXPECT_EQ(builder.num_pending_edges(), 3u);
  CitationGraph g = std::move(builder).Build().value();
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilderTest, AddEdgesBulkStopsOnFirstError) {
  GraphBuilder builder;
  builder.AddNodes(2, 2000);
  EXPECT_TRUE(builder.AddEdges({{1, 0}, {9, 0}}).IsInvalidArgument());
}

}  // namespace
}  // namespace scholar
