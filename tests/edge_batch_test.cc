#include "stream/edge_batch.h"

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace scholar {
namespace stream {
namespace {

EdgeBatch SampleBatch() {
  EdgeBatch batch;
  batch.sequence = 7;
  batch.node_years = {2015, 2015, 2016};
  batch.edges = {{5, 0}, {5, 3}, {6, 5}, {7, 1}};
  return batch;
}

std::string Bytes(const EdgeBatch& batch) {
  std::ostringstream out(std::ios::binary);
  Status status = WriteEdgeBatch(batch, &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out.str();
}

Result<EdgeBatch> Parse(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return ReadEdgeBatch(&in);
}

// Header layout: "SREB" u32 version | u64 sequence | u32 num_nodes |
// u64 num_edges — payload (years, edges) starts at byte 28, CRC is the
// last 4 bytes.
constexpr size_t kHeaderBytes = 28;

/// Re-stamps the trailing CRC so a payload patch tests the semantic check
/// it targets rather than tripping the checksum first.
void RestampCrc(std::string* bytes) {
  const uint32_t crc = Crc32(bytes->data() + kHeaderBytes,
                             bytes->size() - kHeaderBytes - 4);
  bytes->replace(bytes->size() - 4, 4, reinterpret_cast<const char*>(&crc), 4);
}

void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
  bytes->replace(offset, sizeof(value), reinterpret_cast<const char*>(&value),
                 sizeof(value));
}

TEST(EdgeBatchTest, RoundTripsThroughBytes) {
  const EdgeBatch batch = SampleBatch();
  Result<EdgeBatch> parsed = Parse(Bytes(batch));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, batch);
}

TEST(EdgeBatchTest, RoundTripsEmptyHeartbeatBatch) {
  EdgeBatch heartbeat;
  heartbeat.sequence = 1;
  Result<EdgeBatch> parsed = Parse(Bytes(heartbeat));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes(), 0u);
  EXPECT_EQ(parsed->num_edges(), 0u);
  EXPECT_EQ(parsed->sequence, 1u);
}

TEST(EdgeBatchTest, ReadsConcatenatedBatchesInOrder) {
  EdgeBatch second = SampleBatch();
  second.sequence = 8;
  second.node_years = {2017};
  second.edges = {{8, 0}};
  std::istringstream in(Bytes(SampleBatch()) + Bytes(second),
                        std::ios::binary);
  Result<std::vector<EdgeBatch>> batches = ReadEdgeBatches(&in);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  ASSERT_EQ(batches->size(), 2u);
  EXPECT_EQ((*batches)[0], SampleBatch());
  EXPECT_EQ((*batches)[1], second);
}

TEST(EdgeBatchTest, EmptyStreamIsAnErrorNotAnEmptySuccess) {
  std::istringstream in(std::string(), std::ios::binary);
  EXPECT_FALSE(ReadEdgeBatches(&in).ok());
}

TEST(EdgeBatchTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "edge_batch_test.bin")
          .string();
  std::vector<EdgeBatch> batches = {SampleBatch()};
  batches.push_back(SampleBatch());
  batches.back().sequence = 8;
  ASSERT_TRUE(WriteEdgeBatchFile(batches, path).ok());
  Result<std::vector<EdgeBatch>> read = ReadEdgeBatchFile(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, batches);
}

// ---- Writer refusal: bytes the reader would reject are never produced.

TEST(EdgeBatchTest, WriterRefusesUnsortedEdges) {
  EdgeBatch batch = SampleBatch();
  std::swap(batch.edges[0], batch.edges[1]);
  std::ostringstream out(std::ios::binary);
  EXPECT_EQ(WriteEdgeBatch(batch, &out).code(), StatusCode::kInvalidArgument);
}

TEST(EdgeBatchTest, WriterRefusesDuplicateEdges) {
  EdgeBatch batch = SampleBatch();
  batch.edges[1] = batch.edges[0];
  std::ostringstream out(std::ios::binary);
  EXPECT_EQ(WriteEdgeBatch(batch, &out).code(), StatusCode::kInvalidArgument);
}

TEST(EdgeBatchTest, WriterRefusesSelfLoop) {
  EdgeBatch batch = SampleBatch();
  batch.edges[2] = {6, 6};
  std::ostringstream out(std::ios::binary);
  EXPECT_EQ(WriteEdgeBatch(batch, &out).code(), StatusCode::kInvalidArgument);
}

TEST(EdgeBatchTest, WriterRefusesDecreasingYears) {
  EdgeBatch batch = SampleBatch();
  batch.node_years = {2016, 2015, 2016};
  std::ostringstream out(std::ios::binary);
  EXPECT_EQ(WriteEdgeBatch(batch, &out).code(), StatusCode::kInvalidArgument);
}

TEST(EdgeBatchTest, WriterRefusesSourceSpanWiderThanBatch) {
  EdgeBatch batch = SampleBatch();
  batch.edges.push_back({4000, 0});
  std::ostringstream out(std::ios::binary);
  EXPECT_EQ(WriteEdgeBatch(batch, &out).code(), StatusCode::kInvalidArgument);
}

// ---- Reader contract: typed errors on every malformed shape.

TEST(EdgeBatchTest, TruncatedHeaderIsCorruption) {
  const std::string bytes = Bytes(SampleBatch());
  for (size_t cut : {size_t{0}, size_t{3}, size_t{11}, size_t{27}}) {
    Result<EdgeBatch> parsed = Parse(bytes.substr(0, cut));
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << cut;
  }
}

TEST(EdgeBatchTest, TruncatedPayloadIsCorruption) {
  const std::string bytes = Bytes(SampleBatch());
  Result<EdgeBatch> parsed = Parse(bytes.substr(0, bytes.size() - 5));
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, BadMagicIsCorruption) {
  std::string bytes = Bytes(SampleBatch());
  bytes[0] = 'X';
  EXPECT_EQ(Parse(bytes).status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, UnknownVersionIsCorruption) {
  std::string bytes = Bytes(SampleBatch());
  PatchU32(&bytes, 4, 99);
  EXPECT_EQ(Parse(bytes).status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, FlippedCrcIsCorruption) {
  std::string bytes = Bytes(SampleBatch());
  bytes[bytes.size() - 1] ^= 0x01;
  EXPECT_EQ(Parse(bytes).status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, FlippedPayloadByteIsCaughtByCrc) {
  std::string bytes = Bytes(SampleBatch());
  bytes[kHeaderBytes] ^= 0x40;  // first year byte
  EXPECT_EQ(Parse(bytes).status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, AbsurdDeclaredCountIsBoundedNotAllocated) {
  // num_edges patched to ~2^32: the declared payload exceeds the remaining
  // bytes, so the reader must fail fast instead of allocating.
  std::string bytes = Bytes(SampleBatch());
  PatchU32(&bytes, 20, 0xFFFFFFFFu);
  EXPECT_EQ(Parse(bytes).status().code(), StatusCode::kCorruption);
}

TEST(EdgeBatchTest, ImplausibleYearIsRejected) {
  std::string bytes = Bytes(SampleBatch());
  PatchU32(&bytes, kHeaderBytes, 99999999u);
  RestampCrc(&bytes);
  EXPECT_FALSE(Parse(bytes).ok());
}

TEST(EdgeBatchTest, NonMonotoneYearsAreRejected) {
  std::string bytes = Bytes(SampleBatch());
  PatchU32(&bytes, kHeaderBytes + 4, 1990u);
  RestampCrc(&bytes);
  EXPECT_FALSE(Parse(bytes).ok());
}

TEST(EdgeBatchTest, PatchedSelfLoopIsRejected) {
  std::string bytes = Bytes(SampleBatch());
  // Edge 2 is (6,5) at header + years(12) + 2*8; patch dst to 6.
  PatchU32(&bytes, kHeaderBytes + 12 + 16 + 4, 6u);
  RestampCrc(&bytes);
  EXPECT_FALSE(Parse(bytes).ok());
}

TEST(EdgeBatchTest, PatchedUnsortedEdgesAreRejected) {
  std::string bytes = Bytes(SampleBatch());
  // Patch edge 0's src (5 -> 9) so the list is no longer ascending.
  PatchU32(&bytes, kHeaderBytes + 12, 9u);
  RestampCrc(&bytes);
  EXPECT_FALSE(Parse(bytes).ok());
}

TEST(EdgeBatchTest, EdgesWithoutNodesAreRejected) {
  EdgeBatch batch;
  batch.sequence = 1;
  batch.edges = {{1, 0}};
  std::ostringstream out(std::ios::binary);
  EXPECT_FALSE(WriteEdgeBatch(batch, &out).ok());
}

}  // namespace
}  // namespace stream
}  // namespace scholar
