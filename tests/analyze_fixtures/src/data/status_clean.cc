// unchecked-status fixture: every sanctioned way to consume a Status /
// Result value, plus a reason-carrying NOLINT. Must produce no findings.

#include <string>

#include "util/status.h"

namespace scholar {

Status SaveIndex(const std::string& path);
Result<int> ParseCount(const std::string& text);

Status Propagate() {
  Status st = SaveIndex("first");
  if (!st.ok()) return st;
  if (!SaveIndex("second").ok()) {
    return SaveIndex("fallback");
  }
  auto parsed = ParseCount("7");
  if (!parsed.ok()) return parsed.status();
  SaveIndex("audit-log");  // NOLINT(unchecked-status): fixture-sanctioned fire-and-forget write
  return Status::OK();
}

}  // namespace scholar
