// unchecked-status fixture: every flagged discard pattern. Fed to the
// scholar_analyze binary by scholar_analyze_test; never compiled.
//
// Expected findings (4):
//   line of SaveIndex("first")     bare call, value dropped
//   line of (void)SaveIndex        (void) cast discard
//   line of static_cast<void>      static_cast<void> discard on a Result
//   line of store->Flush()         member call through a pointer, dropped

#include <string>

#include "util/status.h"

namespace scholar {

Status SaveIndex(const std::string& path);
Result<int> ParseCount(const std::string& text);

class Store {
 public:
  Status Flush();
};

void Driver(Store* store) {
  SaveIndex("first");
  (void)SaveIndex("second");
  static_cast<void>(ParseCount("3"));
  store->Flush();
}

}  // namespace scholar
