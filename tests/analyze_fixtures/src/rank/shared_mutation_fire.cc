// shared-mutation fixture: by-ref captures written inside ParallelFor /
// ParallelForChunks bodies with no Mutex, no atomic, and no per-chunk
// subscript. Fed to the scholar_analyze binary by scholar_analyze_test;
// never compiled.
//
// Expected findings (4, all shared-mutation):
//   - 'total' updated   (compound assignment in a ParallelFor body)
//   - 'hits' incremented (prefix ++ in a ParallelFor body)
//   - 'peak' assigned    (plain = in a ParallelFor body)
//   - 'carry' updated    (compound assignment in a ParallelForChunks body)
// The `out[i] = carry` store in Merge is per-chunk subscripted and must
// NOT fire. ParallelFor is blocking, so dangling-capture stays quiet.

#include <vector>

#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace scholar {

void Accumulate(ThreadPool* pool, std::vector<double>& vals) {
  double total = 0.0;
  long hits = 0;
  double peak = 0.0;
  ParallelFor(pool, vals.size(), [&](size_t i) {
    total += vals[i];
    ++hits;
    if (vals[i] > peak) {
      peak = vals[i];
    }
  });
}

void Merge(ThreadPool* pool, std::vector<long>& out) {
  long carry = 1;
  ParallelForChunks(pool, out.size(), 64,
                    [&](size_t chunk, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        out[i] = carry;
                      }
                      carry *= 3;
                    });
}

}  // namespace scholar
