// hot-loop-alloc fixture: allocations inside sweep loops of a kernel
// file. Fed to the scholar_analyze binary by scholar_analyze_test; never
// compiled.
//
// Expected findings (4):
//   'new' in the for loop
//   'malloc' in the for loop
//   container 'push_back' in the while loop
//   'to_string' in the while loop

#include <string>
#include <vector>

namespace scholar {

void SweepScores(int n, std::vector<double>* out) {
  for (int i = 0; i < n; ++i) {
    double* scratch = new double[64];
    void* raw = malloc(64);
    scratch[0] = static_cast<double>(i);
    (*out)[0] = scratch[0];
    free(raw);
    delete[] scratch;
  }
  int left = n;
  while (left > 0) {
    out->push_back(0.0);
    std::string label = std::to_string(left);
    --left;
  }
}

}  // namespace scholar
