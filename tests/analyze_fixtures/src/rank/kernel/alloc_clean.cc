// hot-loop-alloc fixture: every exemption. Must produce no findings.
//
//  - a whole function under an `analyze:init-scope` marker;
//  - a single marked loop inside an otherwise-hot function;
//  - allocation outside any loop;
//  - return / throw statements inside a loop (cold error paths).

#include <stdexcept>
#include <string>
#include <vector>

namespace scholar {

// analyze:init-scope — CSR construction runs once per load, not per sweep
void BuildIndex(int n, std::vector<int>* out) {
  for (int i = 0; i < n; ++i) {
    out->push_back(i);
  }
}

void Sweep(int n, std::vector<double>* scores) {
  std::vector<double> scratch;
  scratch.reserve(static_cast<size_t>(n));
  // analyze:init-scope — one-time warmup table, not per-sweep work
  for (int i = 0; i < n; ++i) {
    scratch.push_back(0.0);
  }
  for (int i = 0; i < n; ++i) {
    if (i > n) {
      throw std::runtime_error("impossible index " + std::to_string(i));
    }
    if (scratch[static_cast<size_t>(i)] < 0.0) {
      return;
    }
    (*scores)[static_cast<size_t>(i)] += scratch[static_cast<size_t>(i)];
  }
}

}  // namespace scholar
