// shared-mutation fixture: every sanctioned shape for sharing state out
// of a parallel body, none of which may fire. Fed to the scholar_analyze
// binary by scholar_analyze_test; never compiled.
//
// Expected findings: none.
//   - out[i] = ...        per-chunk subscript derived from the chunk range
//   - local_sum += ...    lambda-body local (per-invocation state)
//   - hits += 1           std::atomic<long>
//   - total += local_sum  under a MutexLock scope

#include <atomic>
#include <vector>

#include "util/mutex.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace scholar {

void Histogram(ThreadPool* pool, const std::vector<double>& vals,
               std::vector<double>& out) {
  Mutex mu;
  double total = 0.0;
  std::atomic<long> hits{0};
  ParallelForChunks(pool, vals.size(), 128,
                    [&](size_t chunk, size_t begin, size_t end) {
                      double local_sum = 0.0;
                      for (size_t i = begin; i < end; ++i) {
                        local_sum += vals[i];
                        out[i] = vals[i] * 2.0;
                      }
                      hits += 1;
                      {
                        MutexLock lock(mu);
                        total += local_sum;
                      }
                    });
}

}  // namespace scholar
