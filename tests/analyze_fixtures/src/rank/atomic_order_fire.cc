// atomic-confinement fixture: explicit weak memory orders outside the
// audited modules (src/serve/latency_histogram*, src/util/thread_pool*).
// Fed to the scholar_analyze binary by scholar_analyze_test; never
// compiled.
//
// Expected findings (3, all atomic-confinement):
//   - memory_order_relaxed  (classic spelling)
//   - memory_order_acquire  (classic spelling)
//   - memory_order::release (C++20 scoped spelling)

#include <atomic>

namespace scholar {

class Epoch {
 public:
  void Bump() { ticks_.fetch_add(1, std::memory_order_relaxed); }
  long Read() const { return ticks_.load(std::memory_order_acquire); }
  void Close() { done_.store(true, std::memory_order::release); }

 private:
  std::atomic<long> ticks_{0};
  std::atomic<bool> done_{false};
};

}  // namespace scholar
