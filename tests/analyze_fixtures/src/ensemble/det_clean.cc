// determinism fixture: the compliant counterparts. Must produce no
// findings.
//
//  - iterating a sorted std::map is deterministic;
//  - an unordered member folded through an order-insensitive max, audited
//    with a reason-carrying NOLINT;
//  - a member method named time() is not the libc wall clock.

#include <map>
#include <unordered_map>

namespace scholar {

class Clock;  // elsewhere-defined epoch counter with a time() accessor

class Mixer {
 public:
  double Sum() const;
  long Stamp() const;

 private:
  std::map<int, double> sorted_;
  std::unordered_map<int, double> cache_;
};

double Mixer::Sum() const {
  double total = 0.0;
  for (const auto& kv : sorted_) {
    total += kv.second;
  }
  double peak = 0.0;
  for (const auto& kv : cache_) {  // NOLINT(determinism): max over entries is order-independent
    peak = kv.second > peak ? kv.second : peak;
  }
  return total + peak;
}

long Mixer::Stamp() const {
  Clock clk;
  return clk.time();
}

}  // namespace scholar
