// determinism fixture: unordered iteration in an order-sensitive
// subsystem plus a wall-clock call. Fed to the scholar_analyze binary by
// scholar_analyze_test; never compiled.
//
// Expected findings (3):
//   range-for over the unordered member weights_
//   explicit weights_.begin() iteration
//   time(nullptr) outside src/util/rng

#include <ctime>
#include <unordered_map>

namespace scholar {

class Blender {
 public:
  double Blend() const;

 private:
  std::unordered_map<int, double> weights_;
};

double Blender::Blend() const {
  double total = 0.0;
  for (const auto& kv : weights_) {
    total += kv.second;
  }
  auto it = weights_.begin();
  total += it->second;
  total += static_cast<double>(time(nullptr));
  return total;
}

}  // namespace scholar
