// NOLINT-contract fixture: the analyzer only honors a suppression that
// names the rule AND carries a reason. The bare NOLINT(determinism) below
// has no ": reason" tail, so the finding must still fire.
//
// Expected findings (1): range-for over the unordered local.

#include <unordered_map>

namespace scholar {

double FoldPending() {
  std::unordered_map<int, double> pending;
  double total = 0.0;
  for (const auto& kv : pending) {  // NOLINT(determinism)
    total += kv.second;
  }
  return total;
}

}  // namespace scholar
