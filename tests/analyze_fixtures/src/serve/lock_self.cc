// lock-order fixture: direct self-deadlock. scholar::Mutex is
// non-reentrant, so re-acquiring mu_ while it is already held hangs.
//
// Expected findings (1): self-deadlock at the second MutexLock.

#include "util/mutex.h"

namespace scholar {

class Reentrant {
 public:
  void Twice() {
    MutexLock g1(mu_);
    Refresh();
    MutexLock g2(mu_);
  }

  void Refresh() {}

 private:
  Mutex mu_;
};

}  // namespace scholar
