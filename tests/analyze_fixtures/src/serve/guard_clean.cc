// guard-consistency fixture: consistent discipline — every access to
// sum_ holds mu_, including the path reached from a parallel context.
// Fed to the scholar_analyze binary by scholar_analyze_test; never
// compiled.
//
// Expected findings: none.

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace scholar {

void Keep(long v);

class Safe {
 public:
  void Add(long v) {
    MutexLock lock(mu_);
    sum_ = sum_ + v;
  }

  long Get() {
    MutexLock lock(mu_);
    return sum_;
  }

  void Pump(ThreadPool* pool) {
    pool->Submit([this] { Keep(Get()); });
  }

 private:
  Mutex mu_;
  long sum_ = 0;
};

}  // namespace scholar
