// dangling-capture fixture: the compliant shapes. Fed to the
// scholar_analyze binary by scholar_analyze_test; never compiled.
//
// Expected findings: none.
//   - ByValue:  [epoch] copies its capture — safe to outlive the frame
//   - Blocking: [&] inside ParallelFor, which drains before returning
//   - Inline:   named ref-capturing lambda invoked in its own scope only

#include <vector>

#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace scholar {

void Log(long v);

class Quiet {
 public:
  void ByValue(ThreadPool* pool) {
    long epoch = 7;
    pool->Submit([epoch] { Log(epoch); });
  }

  void Blocking(ThreadPool* pool, std::vector<double>& out) {
    double scale = 2.0;
    ParallelFor(pool, out.size(), [&](size_t i) { out[i] = out[i] * scale; });
  }

  void Inline() {
    long limit = 5;
    auto check = [&limit](long v) { return v < limit; };
    if (check(3)) {
      Log(limit);
    }
  }
};

}  // namespace scholar
