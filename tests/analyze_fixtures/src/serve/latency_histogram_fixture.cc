// determinism fixture, sub-check (c) exemption: files under the
// src/serve/latency_histogram* prefix are the one sanctioned clock
// reader in the order-sensitive scopes — duration measurement never
// feeds back into ranking output. Must produce no findings.

#include <chrono>
#include <ctime>

namespace scholar {
namespace serve {

long NowNanosFixture() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() +
         ts.tv_sec;
}

}  // namespace serve
}  // namespace scholar
