// lock-order fixture: consistent outer_ -> inner_ ordering everywhere,
// plus a leaf function taking only the inner lock. The acquisition graph
// is acyclic; must produce no findings.

#include "util/mutex.h"

namespace scholar {

class OrderedState {
 public:
  void First() {
    MutexLock g1(outer_);
    MutexLock g2(inner_);
    ++epoch_;
  }

  void Second() {
    MutexLock g1(outer_);
    MutexLock g2(inner_);
    --epoch_;
  }

  void InnerOnly() {
    MutexLock g(inner_);
    ++epoch_;
  }

 private:
  Mutex outer_;
  Mutex inner_;
  int epoch_ = 0;
};

}  // namespace scholar
