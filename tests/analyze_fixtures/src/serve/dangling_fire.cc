// dangling-capture fixture: ref-capturing lambdas escaping their frame
// through each recognized route. Fed to the scholar_analyze binary by
// scholar_analyze_test; never compiled.
//
// Expected findings (4, all dangling-capture):
//   - Direct:   [&pending] handed straight to ThreadPool::Submit
//   - Detach:   [&] body given to a std::thread
//   - Arm:      named lambda 'task' stored into member 'hook_'
//   - Schedule: [&deadline] passed to RunLater, which forwards its
//               callable argument to Submit — caught through the
//               may-outlive summary, not by naming RunLater anywhere.
// The lambda bodies only read their captures, so shared-mutation must
// stay quiet here.

#include <functional>
#include <thread>

#include "util/thread_pool.h"

namespace scholar {

void Log(long v);

class Relay {
 public:
  void Direct(ThreadPool* pool) {
    long pending = 0;
    pool->Submit([&pending] { Log(pending); });
  }

  void Detach() {
    long count = 0;
    std::thread watcher([&] { Log(count); });
    watcher.join();
  }

  void Arm() {
    long budget = 3;
    auto task = [&budget] { Log(budget); };
    hook_ = task;
  }

  void RunLater(std::function<void()> fn) { pool_->Submit(fn); }

  void Schedule() {
    long deadline = 9;
    RunLater([&deadline] { Log(deadline); });
  }

 private:
  ThreadPool* pool_ = nullptr;
  std::function<void()> hook_;
};

}  // namespace scholar
