// lock-order fixture: a three-mutex cycle where one edge is transitive —
// RotateC holds c_ and calls AcquireRoot, which acquires a_. The analyzer
// must close the may-acquire fixpoint through the call graph to see the
// c_ -> a_ edge.
//
// Expected findings (1): a lock-order cycle
//   TriadState::a_ -> TriadState::b_ -> TriadState::c_ -> TriadState::a_.

#include "util/mutex.h"

namespace scholar {

class TriadState {
 public:
  void RotateA() {
    MutexLock g1(a_);
    MutexLock g2(b_);
  }

  void RotateB() {
    MutexLock g1(b_);
    MutexLock g2(c_);
  }

  void AcquireRoot() {
    MutexLock g(a_);
  }

  void RotateC() {
    MutexLock g1(c_);
    AcquireRoot();
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex c_;
};

}  // namespace scholar
