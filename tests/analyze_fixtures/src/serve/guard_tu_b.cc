// guard-consistency fixture, TU 2 of 2: the bare half. Gauge::Read
// touches value_ with no lock, and Export calls Read from inside a
// ThreadPool::Submit lambda. Fed together with guard_tu_a.cc the
// analyzer must report the bare read here; fed alone there is no
// guarded witness and the file is clean. Fed to the scholar_analyze
// binary by scholar_analyze_test; never compiled.

#include "util/thread_pool.h"

namespace scholar {

void Emit(long v);

class Gauge;

long Gauge::Read() { return value_; }

void Gauge::Export(ThreadPool* pool) {
  pool->Submit([this] { Emit(Read()); });
}

}  // namespace scholar
