// guard-consistency fixture: one field, two disciplines, one file.
// Credit touches balance_ under mu_; Peek reads it bare, and Peek is
// called from inside a ThreadPool::Submit lambda, making it reachable
// from a parallel context. Fed to the scholar_analyze binary by
// scholar_analyze_test; never compiled.
//
// Expected findings (1): guard-consistency on the bare read in Peek,
// with Credit as the guarded witness.

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace scholar {

void Sink(long v);

class Ledger {
 public:
  void Credit(long v) {
    MutexLock lock(mu_);
    balance_ = balance_ + v;
  }

  long Peek() { return balance_; }

  void Audit(ThreadPool* pool) {
    pool->Submit([this] { Sink(Peek()); });
  }

 private:
  Mutex mu_;
  long balance_ = 0;
};

}  // namespace scholar
