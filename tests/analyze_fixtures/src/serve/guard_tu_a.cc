// guard-consistency fixture, TU 1 of 2: the guarded half. Gauge::Set
// writes value_ under mu_. On its own this file is clean — the bare
// accesses live in guard_tu_b.cc, and only a run that feeds both files
// can see the inconsistency. Fed to the scholar_analyze binary by
// scholar_analyze_test; never compiled.

#include "util/mutex.h"

namespace scholar {

class Gauge {
 public:
  void Set(long v);
  long Read();

 private:
  Mutex mu_;
  long value_ = 0;
};

void Gauge::Set(long v) {
  MutexLock lock(mu_);
  value_ = v;
}

}  // namespace scholar
