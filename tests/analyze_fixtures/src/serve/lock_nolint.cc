// lock-order fixture: the same ABBA inversion as lock_cycle2.cc, but the
// inverted acquisition carries a reason-bearing NOLINT, which removes that
// site's edges from the graph. Must produce no findings.

#include "util/mutex.h"

namespace scholar {

class AuditedPair {
 public:
  void Publish() {
    MutexLock a(alpha_);
    MutexLock b(beta_);
    ++published_;
  }

  void Retire() {
    MutexLock b(beta_);
    MutexLock a(alpha_);  // NOLINT(lock-order): fixture-audited inversion, never concurrent with Publish
    --published_;
  }

 private:
  Mutex alpha_;
  Mutex beta_;
  int published_ = 0;
};

}  // namespace scholar
