// lock-order fixture: the classic two-mutex ABBA inversion. Fed to the
// scholar_analyze binary by scholar_analyze_test; never compiled.
//
// Publish acquires alpha_ then beta_; Retire acquires beta_ then alpha_.
// Expected findings (1): a lock-order cycle
//   PairState::alpha_ -> PairState::beta_ -> PairState::alpha_.

#include "util/mutex.h"

namespace scholar {

class PairState {
 public:
  void Publish() {
    MutexLock a(alpha_);
    MutexLock b(beta_);
    ++published_;
  }

  void Retire() {
    MutexLock b(beta_);
    MutexLock a(alpha_);
    --published_;
  }

 private:
  Mutex alpha_;
  Mutex beta_;
  int published_ = 0;
};

}  // namespace scholar
