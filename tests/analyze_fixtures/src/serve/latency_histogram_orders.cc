// atomic-confinement fixture: the same weak memory orders as
// atomic_order_fire.cc, but under the audited src/serve/latency_histogram*
// prefix — the module whose happens-before argument is reviewed as a
// unit. Fed to the scholar_analyze binary by scholar_analyze_test; never
// compiled.
//
// Expected findings: none.

#include <atomic>

namespace scholar {

class HistogramShard {
 public:
  void Record() { count_.fetch_add(1, std::memory_order_relaxed); }
  long Snapshot() const { return count_.load(std::memory_order_acquire); }

 private:
  std::atomic<long> count_{0};
};

}  // namespace scholar
