// determinism fixture, sub-check (c): explicit clock reads inside the
// serving tier — a path-scoped order-sensitive subsystem that is NOT the
// latency histogram module. Fed to the scholar_analyze binary by
// scholar_analyze_test; never compiled.
//
// Expected findings (4):
//   clock_gettime(...)
//   gettimeofday(...)
//   timerfd_create(...)
//   steady_clock::now()

#include <chrono>
#include <ctime>
#include <sys/time.h>
#include <sys/timerfd.h>

namespace scholar {
namespace serve {

long FreshnessStamp() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  timeval tv{};
  gettimeofday(&tv, nullptr);
  const int fd = timerfd_create(CLOCK_MONOTONIC, 0);
  const auto now = std::chrono::steady_clock::now();
  return ts.tv_sec + tv.tv_sec + fd +
         now.time_since_epoch().count();
}

}  // namespace serve
}  // namespace scholar
