// stale-nolint fixture: a reason-bearing parallel-pack suppression on a
// line that no longer produces the finding it names — the loop it once
// excused was serialized. The audit must flag the marker itself. Fed to
// the scholar_analyze binary by scholar_analyze_test; never compiled.
//
// Expected findings (1): stale-nolint on the marker line.

#include <vector>

namespace scholar {

long Total(const std::vector<long>& xs) {
  long total = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];  // NOLINT(shared-mutation): the parallel reduction was serialized; marker kept while the chunked path bakes
  }
  return total;
}

}  // namespace scholar
