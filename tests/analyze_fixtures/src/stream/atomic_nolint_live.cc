// atomic-confinement fixture: a weak order outside the audited modules,
// carried by a reason-bearing NOLINT — the per-site audit trail. Fed to
// the scholar_analyze binary by scholar_analyze_test; never compiled.
//
// Expected findings: none. The suppression is live (it covers a real
// finding on its line), so the stale-nolint audit must stay quiet too.

#include <atomic>

namespace scholar {

class Cursor {
 public:
  void Advance() {
    epoch_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(atomic-confinement): monotone tick; readers only compare values for progress, no data is published through it
  }

 private:
  std::atomic<long> epoch_{0};
};

}  // namespace scholar
