// hot-loop-alloc scoping fixture: the same per-iteration allocations that
// fire under src/rank/kernel/ are fine in evaluation code, which runs once
// per experiment. Must produce no findings.

#include <string>
#include <vector>

namespace scholar {

void CollectLabels(int n, std::vector<std::string>* out) {
  for (int i = 0; i < n; ++i) {
    out->push_back(std::to_string(i));
  }
}

}  // namespace scholar
