/// Failure-injection and cross-implementation property tests: corrupt
/// inputs must fail with Status (never crash), and independent
/// implementations of the same quantity must agree.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "graph/graph_io.h"
#include "graph/time_slicer.h"
#include "rank/gauss_seidel.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;

// ---------------------------------------------------------------------------
// Corruption injection: flip bytes of a serialized graph at many positions;
// the reader must either reject with a Status or return a graph — never
// crash, never hand back something the consistency checks reject.
// ---------------------------------------------------------------------------

class BinaryCorruptionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BinaryCorruptionSweep, CorruptedByteNeverCrashes) {
  CitationGraph g = MakeRandomGraph(60, 3.0, 1995, 8, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(WriteGraphBinary(g, &buffer).ok());
  std::string data = buffer.str();
  const size_t pos = GetParam() % data.size();
  data[pos] = static_cast<char>(data[pos] ^ 0xFF);

  std::stringstream corrupted(data,
                              std::ios::in | std::ios::out | std::ios::binary);
  Result<CitationGraph> result = ReadGraphBinary(&corrupted);
  if (result.ok()) {
    // A flip that survives validation must still yield a structurally
    // sound graph (counting-sort reverse adjacency would have aborted
    // otherwise); degree sums must match.
    size_t in_sum = 0, out_sum = 0;
    for (NodeId v = 0; v < result->num_nodes(); ++v) {
      in_sum += result->InDegree(v);
      out_sum += result->OutDegree(v);
    }
    EXPECT_EQ(in_sum, out_sum);
  } else {
    EXPECT_TRUE(result.status().IsCorruption() ||
                result.status().IsInvalidArgument())
        << result.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(BytePositions, BinaryCorruptionSweep,
                         ::testing::Values(0, 1, 3, 4, 7, 12, 16, 21, 25, 40,
                                           63, 97, 150, 260, 411, 777));

class TextCorruptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TextCorruptionSweep, MangledLineNeverCrashes) {
  CitationGraph g = MakeRandomGraph(40, 2.5, 1995, 6, 7);
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(g, &buffer).ok());
  std::string text = buffer.str();

  // Mangle one line: duplicate it, truncate it, or inject garbage.
  std::vector<std::string> lines;
  for (auto part : Split(text, '\n')) lines.emplace_back(part);
  Rng rng(static_cast<uint64_t>(GetParam()));
  size_t idx = 1 + rng.NextBounded(lines.size() - 2);
  switch (GetParam() % 3) {
    case 0:
      lines[idx] = "garbage here";
      break;
    case 1:
      lines.insert(lines.begin() + static_cast<long>(idx), lines[idx]);
      break;
    default:
      lines[idx] = lines[idx].substr(0, lines[idx].size() / 2) + "x";
      break;
  }
  std::string mangled;
  for (const auto& line : lines) {
    mangled += line;
    mangled += '\n';
  }
  std::stringstream in(mangled);
  Result<CitationGraph> result = ReadGraphText(&in);
  // Either rejected or parsed; both acceptable, crash is not.
  if (!result.ok()) {
    EXPECT_FALSE(result.status().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Mutations, TextCorruptionSweep,
                         ::testing::Range(0, 18));

// ---------------------------------------------------------------------------
// Cross-implementation agreement.
// ---------------------------------------------------------------------------

/// O(n^2) reference Kendall tau (tie-free inputs).
double BruteForceTau(const std::vector<double>& a,
                     const std::vector<double>& b) {
  int64_t concordant = 0, discordant = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da * db > 0) ++concordant;
      else if (da * db < 0) ++discordant;
    }
  }
  const double total = static_cast<double>(a.size()) * (a.size() - 1) / 2.0;
  return (concordant - discordant) / total;
}

class TauCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TauCrossCheck, MergeSortMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<double> a(120), b(120);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble();
    b[i] = 0.5 * a[i] + 0.5 * rng.NextDouble();
  }
  EXPECT_NEAR(KendallTau(a, b).value(), BruteForceTau(a, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TauCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5));

class SolverCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverCrossCheck, PowerIterationAndGaussSeidelAgree) {
  CitationGraph g = MakeRandomGraph(250, 4.0, 1985, 15, GetParam());
  std::vector<double> weights =
      TimeWeightedPageRank::ComputeEdgeWeights(g, 0.3);
  PowerIterationOptions o;
  o.tolerance = 1e-12;
  RankResult power = WeightedPowerIteration(g, weights, {}, o).value();
  RankResult gs = GaussSeidelPageRank(g, weights, {}, o).value();
  for (size_t i = 0; i < power.scores.size(); ++i) {
    EXPECT_NEAR(power.scores[i], gs.scores[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCrossCheck,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Snapshot algebra: nested snapshots compose.
// ---------------------------------------------------------------------------

class SnapshotNesting : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotNesting, SnapshotOfSnapshotEqualsDirectSnapshot) {
  CitationGraph g = MakeRandomGraph(300, 4.0, 1980, 20, GetParam());
  const Year outer = 1994, inner = 1988;
  Snapshot big = ExtractSnapshot(g, outer);
  Snapshot nested = ExtractSnapshot(big.graph, inner);
  Snapshot direct = ExtractSnapshot(g, inner);
  EXPECT_EQ(nested.graph, direct.graph);
  // Composed mappings agree with the direct mapping.
  ASSERT_EQ(nested.to_parent.size(), direct.to_parent.size());
  for (NodeId s = 0; s < nested.graph.num_nodes(); ++s) {
    EXPECT_EQ(big.to_parent[nested.to_parent[s]], direct.to_parent[s]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotNesting,
                         ::testing::Values(3, 7, 31));

// ---------------------------------------------------------------------------
// Ranking invariance: relabel-stability under year-preserving structure.
// ---------------------------------------------------------------------------

TEST(RankerInvarianceTest, DuplicatedGraphHalvesScores) {
  // Two disjoint copies of the same graph: every article's PageRank halves
  // but the within-copy ordering is untouched.
  CitationGraph g = MakeRandomGraph(150, 4.0, 1990, 10, 9);
  GraphBuilder builder;
  for (int copy = 0; copy < 2; ++copy) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) builder.AddNode(g.year(u));
  }
  const NodeId offset = static_cast<NodeId>(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.References(u)) {
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
      SCHOLAR_CHECK_OK(builder.AddEdge(u + offset, v + offset));
    }
  }
  CitationGraph doubled = std::move(builder).Build().value();

  PowerIterationOptions o;
  o.tolerance = 1e-13;
  RankResult single = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult both = WeightedPowerIteration(doubled, {}, {}, o).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(both.scores[u], single.scores[u] / 2.0, 1e-9);
    EXPECT_NEAR(both.scores[u + offset], single.scores[u] / 2.0, 1e-9);
  }
}

}  // namespace
}  // namespace scholar
