#include "serve/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace scholar {
namespace serve {
namespace {

TEST(LruCacheTest, PutThenGet) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  EXPECT_EQ(cache.Get("a"), 1);
  EXPECT_EQ(cache.Get("missing"), std::nullopt);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so that 2 becomes the oldest.
  EXPECT_EQ(cache.Get(1), 10);
  cache.Put(4, 40);
  EXPECT_EQ(cache.Get(2), std::nullopt);  // evicted
  EXPECT_EQ(cache.Get(1), 10);
  EXPECT_EQ(cache.Get(3), 30);
  EXPECT_EQ(cache.Get(4), 40);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh, not insert: 2 stays, 1 updated
  cache.Put(3, 30);  // evicts 2 (oldest), not 1
  EXPECT_EQ(cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(3), 30);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ConcurrentMixedUseKeepsInvariants) {
  LruCache<int, int> cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 5000; ++i) {
        const int key = (t * 31 + i) % 200;
        cache.Put(key, key * 2);
        std::optional<int> hit = cache.Get(key);
        if (hit.has_value()) {
          EXPECT_EQ(*hit, key * 2);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace serve
}  // namespace scholar
