#include "serve/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace scholar {
namespace serve {
namespace {

TEST(LruCacheTest, PutThenGet) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  EXPECT_EQ(cache.Get("a"), 1);
  EXPECT_EQ(cache.Get("missing"), std::nullopt);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so that 2 becomes the oldest.
  EXPECT_EQ(cache.Get(1), 10);
  cache.Put(4, 40);
  EXPECT_EQ(cache.Get(2), std::nullopt);  // evicted
  EXPECT_EQ(cache.Get(1), 10);
  EXPECT_EQ(cache.Get(3), 30);
  EXPECT_EQ(cache.Get(4), 40);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh, not insert: 2 stays, 1 updated
  cache.Put(3, 30);  // evicts 2 (oldest), not 1
  EXPECT_EQ(cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(3), 30);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, ConcurrentMixedUseKeepsInvariants) {
  LruCache<int, int> cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 5000; ++i) {
        const int key = (t * 31 + i) % 200;
        cache.Put(key, key * 2);
        std::optional<int> hit = cache.Get(key);
        if (hit.has_value()) {
          EXPECT_EQ(*hit, key * 2);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 64u);
}

// Heavy eviction churn with heap-owning values: every Put under a tiny
// capacity forces an eviction, so iterator juggling between the recency
// list and the index races hardest here. String values make any
// use-after-evict visible to ASan, and the mixed readers make the whole
// workload TSan-visible — this is the runtime backing for the GUARDED_BY
// annotations on LruCache's internals.
TEST(LruCacheTest, ConcurrentEvictionChurnKeepsValuesIntact) {
  LruCache<int, std::string> cache(8);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 17 + i) % 64;
        if (i % 3 == 0) {
          cache.Put(key, "value-" + std::to_string(key));
        } else {
          std::optional<std::string> hit = cache.Get(key);
          if (hit.has_value()) {
            EXPECT_EQ(*hit, "value-" + std::to_string(key));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 8u);
}

// Stats accessors must be safe to call while mutators run, and the final
// accounting must balance: every Get is exactly one hit or one miss.
TEST(LruCacheTest, ConcurrentStatsReadersSeeConsistentCounts) {
  LruCache<int, int> cache(32);
  constexpr int kWriters = 3;
  constexpr int kGetsPerWriter = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kGetsPerWriter; ++i) {
        const int key = (t + i) % 100;
        if (i % 2 == 0) cache.Put(key, key);
        (void)cache.Get(key);
      }
    });
  }
  // A dedicated reader hammers the stats while the writers churn; the
  // sums it observes are monotone snapshots, never torn values.
  std::thread reader([&cache] {
    uint64_t last_total = 0;
    for (int i = 0; i < 2000; ++i) {
      const uint64_t total = cache.hits() + cache.misses();
      EXPECT_GE(total, last_total);
      last_total = total;
      (void)cache.size();
    }
  });
  for (std::thread& t : threads) t.join();
  reader.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kWriters) * kGetsPerWriter);
}

}  // namespace
}  // namespace serve
}  // namespace scholar
