#include "graph/bipartite.h"

#include <vector>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(PaperAuthorsTest, EmptyMap) {
  PaperAuthors pa = PaperAuthors::FromLists({});
  EXPECT_EQ(pa.num_papers(), 0u);
  EXPECT_EQ(pa.num_authors(), 0u);
  EXPECT_EQ(pa.num_links(), 0u);
}

TEST(PaperAuthorsTest, PapersWithoutAuthors) {
  PaperAuthors pa = PaperAuthors::FromLists({{}, {}, {}});
  EXPECT_EQ(pa.num_papers(), 3u);
  EXPECT_EQ(pa.num_authors(), 0u);
  EXPECT_TRUE(pa.AuthorsOf(1).empty());
}

TEST(PaperAuthorsTest, ForwardLookup) {
  PaperAuthors pa = PaperAuthors::FromLists({{0, 1}, {1}, {2, 0}});
  EXPECT_EQ(pa.num_papers(), 3u);
  EXPECT_EQ(pa.num_authors(), 3u);
  EXPECT_EQ(pa.num_links(), 5u);
  auto a0 = pa.AuthorsOf(0);
  ASSERT_EQ(a0.size(), 2u);
  EXPECT_EQ(a0[0], 0u);
  EXPECT_EQ(a0[1], 1u);
}

TEST(PaperAuthorsTest, ReverseLookupIsTranspose) {
  PaperAuthors pa = PaperAuthors::FromLists({{0, 1}, {1}, {2, 0}});
  auto p0 = pa.PapersOf(0);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0], 0u);
  EXPECT_EQ(p0[1], 2u);
  auto p1 = pa.PapersOf(1);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_EQ(p1[0], 0u);
  EXPECT_EQ(p1[1], 1u);
  EXPECT_EQ(pa.PaperCount(2), 1u);
}

TEST(PaperAuthorsTest, SparseAuthorIdsCreateGaps) {
  // Author 5 is the only author used; ids 0..4 exist but have no papers.
  PaperAuthors pa = PaperAuthors::FromLists({{5}});
  EXPECT_EQ(pa.num_authors(), 6u);
  EXPECT_EQ(pa.PaperCount(5), 1u);
  EXPECT_EQ(pa.PaperCount(0), 0u);
  EXPECT_TRUE(pa.PapersOf(3).empty());
}

TEST(PaperAuthorsTest, LinkCountsConsistent) {
  std::vector<std::vector<AuthorId>> lists = {
      {0, 2}, {1}, {0, 1, 2}, {}, {2}};
  PaperAuthors pa = PaperAuthors::FromLists(lists);
  size_t via_papers = 0;
  for (NodeId p = 0; p < pa.num_papers(); ++p) {
    via_papers += pa.AuthorsOf(p).size();
  }
  size_t via_authors = 0;
  for (AuthorId a = 0; a < pa.num_authors(); ++a) {
    via_authors += pa.PapersOf(a).size();
  }
  EXPECT_EQ(via_papers, pa.num_links());
  EXPECT_EQ(via_authors, pa.num_links());
}

}  // namespace
}  // namespace scholar
