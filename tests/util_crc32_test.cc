#include "util/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical zlib check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const uint32_t clean = Crc32(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace scholar
