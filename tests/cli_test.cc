#include "cli/commands.h"

#include <sstream>

#include <gtest/gtest.h>

namespace scholar {
namespace cli {
namespace {

Config Cfg(std::initializer_list<std::pair<std::string, std::string>> kv) {
  Config config;
  for (const auto& [k, v] : kv) config.Set(k, v);
  return config;
}

TEST(CliLoadCorpusTest, SyntheticByProfile) {
  Corpus corpus =
      LoadCorpus(Cfg({{"profile", "aminer"}, {"n", "500"}})).value();
  EXPECT_EQ(corpus.num_articles(), 500u);
  EXPECT_TRUE(corpus.has_ground_truth());
}

TEST(CliLoadCorpusTest, NoInputIsError) {
  EXPECT_TRUE(LoadCorpus(Config()).status().IsInvalidArgument());
}

TEST(CliLoadCorpusTest, HalfTsvInputIsError) {
  EXPECT_TRUE(
      LoadCorpus(Cfg({{"articles", "/tmp/x.tsv"}})).status()
          .IsInvalidArgument());
}

TEST(CliGenerateTest, WritesRequestedOutputs) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream out;
  Status s = RunGenerate(Cfg({{"profile", "aminer"},
                              {"n", "300"},
                              {"out_articles", dir + "/a.tsv"},
                              {"out_citations", dir + "/c.tsv"},
                              {"out_graph", dir + "/g.bin"}}),
                         &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out.str().find("generated"), std::string::npos);
  // The written TSV loads back.
  Corpus corpus = LoadCorpus(Cfg({{"articles", dir + "/a.tsv"},
                                  {"citations", dir + "/c.tsv"}}))
                      .value();
  EXPECT_EQ(corpus.num_articles(), 300u);
}

TEST(CliGenerateTest, NoOutputIsError) {
  std::ostringstream out;
  EXPECT_TRUE(RunGenerate(Cfg({{"profile", "aminer"}, {"n", "100"}}), &out)
                  .IsInvalidArgument());
}

TEST(CliStatsTest, PrintsKeyNumbers) {
  std::ostringstream out;
  Status s = RunStats(Cfg({{"profile", "aminer"}, {"n", "400"}}), &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(out.str().find("nodes"), std::string::npos);
  EXPECT_NE(out.str().find("400"), std::string::npos);
  EXPECT_NE(out.str().find("giant component"), std::string::npos);
}

TEST(CliRankTest, EmitsCsvRows) {
  std::ostringstream out;
  Status s = RunRank(Cfg({{"profile", "aminer"},
                          {"n", "400"},
                          {"ranker", "pagerank"},
                          {"top", "5"}}),
                     &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("node_id,year,citations,score,rank"),
            std::string::npos);
  // Header + 5 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(CliRankTest, UnknownRankerPropagates) {
  std::ostringstream out;
  EXPECT_TRUE(RunRank(Cfg({{"profile", "aminer"},
                           {"n", "100"},
                           {"ranker", "wat"}}),
                      &out)
                  .IsNotFound());
}

TEST(CliEvalTest, EvaluatesSelectedRankers) {
  std::ostringstream out;
  Status s = RunEval(Cfg({{"profile", "aminer"},
                          {"n", "800"},
                          {"pairs", "2000"},
                          {"rankers", "cc,pagerank"}}),
                     &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("cc,"), std::string::npos);
  EXPECT_NE(text.find("pagerank,"), std::string::npos);
  EXPECT_EQ(text.find("twpr,"), std::string::npos);
}

TEST(CliConvertTest, TsvToAMinerRoundTrip) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream out;
  ASSERT_TRUE(RunGenerate(Cfg({{"profile", "aminer"},
                               {"n", "200"},
                               {"out_articles", dir + "/r.tsv"},
                               {"out_citations", dir + "/rc.tsv"}}),
                          &out)
                  .ok());
  Status s = RunConvert(Cfg({{"articles", dir + "/r.tsv"},
                             {"citations", dir + "/rc.tsv"},
                             {"out_aminer", dir + "/r.aminer"}}),
                        &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  Corpus corpus = LoadCorpus(Cfg({{"aminer", dir + "/r.aminer"}})).value();
  EXPECT_EQ(corpus.num_articles(), 200u);
}

TEST(CliMainTest, DispatchAndExitCodes) {
  std::ostringstream out, err;
  const char* help[] = {"scholar_cli", "help"};
  EXPECT_EQ(Main(2, help, &out, &err), 0);
  EXPECT_NE(out.str().find("commands:"), std::string::npos);

  const char* unknown[] = {"scholar_cli", "frobnicate"};
  EXPECT_EQ(Main(2, unknown, &out, &err), 2);

  const char* none[] = {"scholar_cli"};
  EXPECT_EQ(Main(1, none, &out, &err), 2);

  const char* bad_args[] = {"scholar_cli", "stats", "--oops"};
  EXPECT_EQ(Main(3, bad_args, &out, &err), 2);

  const char* failing[] = {"scholar_cli", "stats", "aminer=/nope.txt"};
  EXPECT_EQ(Main(3, failing, &out, &err), 1);

  std::ostringstream good_out;
  const char* good[] = {"scholar_cli", "stats", "profile=aminer", "n=300"};
  EXPECT_EQ(Main(4, good, &good_out, &err), 0);
  EXPECT_NE(good_out.str().find("nodes"), std::string::npos);
}

}  // namespace
}  // namespace cli
}  // namespace scholar
