#include "rank/ranker.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

TEST(ScoresToRanksTest, BasicOrdering) {
  std::vector<uint32_t> ranks = ScoresToRanks({0.1, 0.9, 0.5});
  EXPECT_EQ(ranks[1], 0u);  // highest score = rank 0
  EXPECT_EQ(ranks[2], 1u);
  EXPECT_EQ(ranks[0], 2u);
}

TEST(ScoresToRanksTest, TiesBreakByNodeId) {
  std::vector<uint32_t> ranks = ScoresToRanks({0.5, 0.5, 0.9});
  EXPECT_EQ(ranks[2], 0u);
  EXPECT_EQ(ranks[0], 1u);  // id 0 beats id 1 on tie
  EXPECT_EQ(ranks[1], 2u);
}

TEST(ScoresToRanksTest, EmptyInput) {
  EXPECT_TRUE(ScoresToRanks({}).empty());
}

TEST(RankPercentilesTest, BestGetsOneWorstGetsOneOverN) {
  std::vector<double> pct = RankPercentiles({0.1, 0.9, 0.5, 0.3});
  EXPECT_DOUBLE_EQ(pct[1], 1.0);
  EXPECT_DOUBLE_EQ(pct[2], 0.75);
  EXPECT_DOUBLE_EQ(pct[3], 0.5);
  EXPECT_DOUBLE_EQ(pct[0], 0.25);
}

TEST(RankPercentilesTest, SingleElement) {
  std::vector<double> pct = RankPercentiles({42.0});
  ASSERT_EQ(pct.size(), 1u);
  EXPECT_DOUBLE_EQ(pct[0], 1.0);
}

TEST(MidrankPercentilesTest, NoTiesMatchesPlainPercentiles) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.3};
  EXPECT_EQ(MidrankPercentiles(scores), RankPercentiles(scores));
}

TEST(MidrankPercentilesTest, TiesShareAverage) {
  // Scores: 0.9 best (1.0), then the two tied 0.5s share (0.75 + 0.5)/2.
  std::vector<double> pct = MidrankPercentiles({0.5, 0.5, 0.9, 0.1});
  EXPECT_DOUBLE_EQ(pct[2], 1.0);
  EXPECT_DOUBLE_EQ(pct[0], 0.625);
  EXPECT_DOUBLE_EQ(pct[1], 0.625);
  EXPECT_DOUBLE_EQ(pct[3], 0.25);
}

TEST(MidrankPercentilesTest, AllTiedGetSameValue) {
  std::vector<double> pct = MidrankPercentiles({3.0, 3.0, 3.0, 3.0});
  for (double p : pct) EXPECT_DOUBLE_EQ(p, 0.625);  // mean of 1, .75, .5, .25
}

TEST(MidrankPercentilesTest, EmptyInput) {
  EXPECT_TRUE(MidrankPercentiles({}).empty());
}

TEST(TopKTest, ReturnsBestFirst) {
  std::vector<NodeId> top = TopK({0.1, 0.9, 0.5, 0.7}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(TopKTest, KLargerThanNReturnsAll) {
  std::vector<NodeId> top = TopK({0.1, 0.9}, 10);
  EXPECT_EQ(top.size(), 2u);
}

TEST(TopKTest, DeterministicUnderTies) {
  std::vector<NodeId> a = TopK({0.5, 0.5, 0.5}, 2);
  std::vector<NodeId> b = TopK({0.5, 0.5, 0.5}, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
}

TEST(ValidateContextTest, NullGraphFails) {
  RankContext ctx;
  EXPECT_TRUE(ValidateContext(ctx, false).IsInvalidArgument());
}

TEST(ValidateContextTest, AuthorsRequiredButMissing) {
  CitationGraph g = testing_util::MakeTinyGraph();
  RankContext ctx;
  ctx.graph = &g;
  EXPECT_TRUE(ValidateContext(ctx, false).ok());
  EXPECT_TRUE(ValidateContext(ctx, true).IsInvalidArgument());
}

TEST(ValidateContextTest, AuthorPaperCountMustMatch) {
  CitationGraph g = testing_util::MakeTinyGraph();
  PaperAuthors wrong = PaperAuthors::FromLists({{0}, {1}});  // 2 papers != 5
  RankContext ctx;
  ctx.graph = &g;
  ctx.authors = &wrong;
  EXPECT_TRUE(ValidateContext(ctx, true).IsInvalidArgument());

  PaperAuthors right =
      PaperAuthors::FromLists({{0}, {1}, {0}, {2}, {1}});
  ctx.authors = &right;
  EXPECT_TRUE(ValidateContext(ctx, true).ok());
}

TEST(RankContextTest, EffectiveNowDefaultsToMaxYear) {
  CitationGraph g = testing_util::MakeTinyGraph();
  RankContext ctx;
  ctx.graph = &g;
  EXPECT_EQ(ctx.EffectiveNow(), 2004);
  ctx.now_year = 2010;
  EXPECT_EQ(ctx.EffectiveNow(), 2010);
}

}  // namespace
}  // namespace scholar
