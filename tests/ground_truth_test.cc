#include "data/ground_truth.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace scholar {
namespace {

Corpus SmallCorpus() {
  SyntheticOptions o;
  o.num_articles = 2000;
  o.num_years = 10;
  o.seed = 11;
  return GenerateSyntheticCorpus(o, "gt").value();
}

TEST(SamplePairsTest, PairsRespectMargin) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 500;
  o.margin = 0.25;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_EQ(pairs.size(), 500u);
  for (const EvalPair& p : pairs) {
    EXPECT_GE(corpus.true_impact[p.better],
              1.25 * corpus.true_impact[p.worse]);
  }
}

TEST(SamplePairsTest, DeterministicInSeed) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 100;
  auto a = SampleGroundTruthPairs(corpus, o).value();
  auto b = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].better, b[i].better);
    EXPECT_EQ(a[i].worse, b[i].worse);
  }
}

TEST(SamplePairsTest, YearFilterRestrictsBothSides) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 300;
  o.min_year = corpus.graph.max_year() - 2;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_FALSE(pairs.empty());
  for (const EvalPair& p : pairs) {
    EXPECT_GE(corpus.graph.year(p.better), o.min_year);
    EXPECT_GE(corpus.graph.year(p.worse), o.min_year);
  }
}

TEST(SamplePairsTest, SameYearPairsShareAYear) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 300;
  o.same_year_only = true;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_FALSE(pairs.empty());
  for (const EvalPair& p : pairs) {
    EXPECT_EQ(corpus.graph.year(p.better), corpus.graph.year(p.worse));
  }
}

TEST(SamplePairsTest, RequiresGroundTruth) {
  Corpus corpus = SmallCorpus();
  corpus.true_impact.clear();
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, {}).status().code() ==
              StatusCode::kFailedPrecondition);
}

TEST(SamplePairsTest, RejectsNegativeMargin) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.margin = -0.5;
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, o).status().IsInvalidArgument());
}

TEST(SamplePairsTest, ImpossibleYearFilterFails) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.min_year = corpus.graph.max_year() + 100;
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, o).status().IsInvalidArgument());
}

TEST(AwardBenchmarkTest, EveryYearGetsAtLeastOneAward) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.02).value();
  std::set<Year> award_years;
  for (NodeId v : bench.awards) award_years.insert(corpus.graph.year(v));
  std::set<Year> all_years;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    all_years.insert(corpus.graph.year(v));
  }
  EXPECT_EQ(award_years, all_years);
}

TEST(AwardBenchmarkTest, AwardsAreTopImpactWithinTheirYear) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.05).value();
  // No non-award article may strictly dominate an award article of the same
  // year.
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    if (!bench.is_award[v]) continue;
    for (NodeId w = 0; w < corpus.num_articles(); ++w) {
      if (bench.is_award[w] ||
          corpus.graph.year(w) != corpus.graph.year(v)) {
        continue;
      }
      EXPECT_LE(corpus.true_impact[w], corpus.true_impact[v]);
    }
    break;  // one award article is enough for this O(n^2) spot check
  }
}

TEST(AwardBenchmarkTest, FractionControlsSize) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark small = BuildAwardBenchmark(corpus, 0.01).value();
  AwardBenchmark large = BuildAwardBenchmark(corpus, 0.10).value();
  EXPECT_LT(small.awards.size(), large.awards.size());
  // ~1% and ~10% of 2000 articles (plus per-year minimums).
  EXPECT_NEAR(static_cast<double>(large.awards.size()), 200.0, 30.0);
}

TEST(AwardBenchmarkTest, MaskMatchesList) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.03).value();
  size_t mask_count = 0;
  for (bool b : bench.is_award) mask_count += b;
  EXPECT_EQ(mask_count, bench.awards.size());
  for (NodeId v : bench.awards) EXPECT_TRUE(bench.is_award[v]);
}

TEST(AwardBenchmarkTest, RejectsBadFraction) {
  Corpus corpus = SmallCorpus();
  EXPECT_TRUE(BuildAwardBenchmark(corpus, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(BuildAwardBenchmark(corpus, 1.5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scholar
