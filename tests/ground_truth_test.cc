#include "data/ground_truth.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace scholar {
namespace {

Corpus SmallCorpus() {
  SyntheticOptions o;
  o.num_articles = 2000;
  o.num_years = 10;
  o.seed = 11;
  return GenerateSyntheticCorpus(o, "gt").value();
}

TEST(SamplePairsTest, PairsRespectMargin) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 500;
  o.margin = 0.25;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_EQ(pairs.size(), 500u);
  for (const EvalPair& p : pairs) {
    EXPECT_GE(corpus.true_impact[p.better],
              1.25 * corpus.true_impact[p.worse]);
  }
}

TEST(SamplePairsTest, DeterministicInSeed) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 100;
  auto a = SampleGroundTruthPairs(corpus, o).value();
  auto b = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].better, b[i].better);
    EXPECT_EQ(a[i].worse, b[i].worse);
  }
}

TEST(SamplePairsTest, YearFilterRestrictsBothSides) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 300;
  o.min_year = corpus.graph.max_year() - 2;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_FALSE(pairs.empty());
  for (const EvalPair& p : pairs) {
    EXPECT_GE(corpus.graph.year(p.better), o.min_year);
    EXPECT_GE(corpus.graph.year(p.worse), o.min_year);
  }
}

TEST(SamplePairsTest, SameYearPairsShareAYear) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.num_pairs = 300;
  o.same_year_only = true;
  auto pairs = SampleGroundTruthPairs(corpus, o).value();
  ASSERT_FALSE(pairs.empty());
  for (const EvalPair& p : pairs) {
    EXPECT_EQ(corpus.graph.year(p.better), corpus.graph.year(p.worse));
  }
}

TEST(SamplePairsTest, RequiresGroundTruth) {
  Corpus corpus = SmallCorpus();
  corpus.true_impact.clear();
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, {}).status().code() ==
              StatusCode::kFailedPrecondition);
}

TEST(SamplePairsTest, RejectsNegativeMargin) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.margin = -0.5;
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, o).status().IsInvalidArgument());
}

TEST(SamplePairsTest, ImpossibleYearFilterFails) {
  Corpus corpus = SmallCorpus();
  PairSamplingOptions o;
  o.min_year = corpus.graph.max_year() + 100;
  EXPECT_TRUE(SampleGroundTruthPairs(corpus, o).status().IsInvalidArgument());
}

TEST(AwardBenchmarkTest, EveryYearGetsAtLeastOneAward) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.02).value();
  std::set<Year> award_years;
  for (NodeId v : bench.awards) award_years.insert(corpus.graph.year(v));
  std::set<Year> all_years;
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    all_years.insert(corpus.graph.year(v));
  }
  EXPECT_EQ(award_years, all_years);
}

TEST(AwardBenchmarkTest, AwardsAreTopImpactWithinTheirYear) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.05).value();
  // No non-award article may strictly dominate an award article of the same
  // year.
  for (NodeId v = 0; v < corpus.num_articles(); ++v) {
    if (!bench.is_award[v]) continue;
    for (NodeId w = 0; w < corpus.num_articles(); ++w) {
      if (bench.is_award[w] ||
          corpus.graph.year(w) != corpus.graph.year(v)) {
        continue;
      }
      EXPECT_LE(corpus.true_impact[w], corpus.true_impact[v]);
    }
    break;  // one award article is enough for this O(n^2) spot check
  }
}

TEST(AwardBenchmarkTest, FractionControlsSize) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark small = BuildAwardBenchmark(corpus, 0.01).value();
  AwardBenchmark large = BuildAwardBenchmark(corpus, 0.10).value();
  EXPECT_LT(small.awards.size(), large.awards.size());
  // ~1% and ~10% of 2000 articles (plus per-year minimums).
  EXPECT_NEAR(static_cast<double>(large.awards.size()), 200.0, 30.0);
}

TEST(AwardBenchmarkTest, MaskMatchesList) {
  Corpus corpus = SmallCorpus();
  AwardBenchmark bench = BuildAwardBenchmark(corpus, 0.03).value();
  size_t mask_count = 0;
  for (bool b : bench.is_award) mask_count += b;
  EXPECT_EQ(mask_count, bench.awards.size());
  for (NodeId v : bench.awards) EXPECT_TRUE(bench.is_award[v]);
}

TEST(AwardBenchmarkTest, RejectsBadFraction) {
  Corpus corpus = SmallCorpus();
  EXPECT_TRUE(BuildAwardBenchmark(corpus, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(BuildAwardBenchmark(corpus, 1.5).status().IsInvalidArgument());
}

TEST(GroundTruthLabelsTest, RoundTrip) {
  std::vector<double> impact = {0.5, 0.0, 3.25, 1.0};
  std::stringstream buffer;
  ASSERT_TRUE(WriteGroundTruthLabels(impact, &buffer).ok());
  std::vector<double> back = ReadGroundTruthLabels(&buffer).value();
  EXPECT_EQ(back, impact);
}

TEST(GroundTruthLabelsTest, SparseLabelsDefaultToZero) {
  std::stringstream in(
      "#scholarrank-labels-v1\n"
      "# an expert label file\n"
      "4 2\n"
      "2 1.5\n"
      "0 0.5\n");
  std::vector<double> impact = ReadGroundTruthLabels(&in).value();
  ASSERT_EQ(impact.size(), 4u);
  EXPECT_DOUBLE_EQ(impact[0], 0.5);
  EXPECT_DOUBLE_EQ(impact[1], 0.0);
  EXPECT_DOUBLE_EQ(impact[2], 1.5);
  EXPECT_DOUBLE_EQ(impact[3], 0.0);
}

TEST(GroundTruthLabelsTest, RejectsMissingSignature) {
  std::stringstream in("4 0\n");
  EXPECT_TRUE(ReadGroundTruthLabels(&in).status().IsCorruption());
}

TEST(GroundTruthLabelsTest, RejectsOutOfRangeIdWithLineNumber) {
  std::stringstream in("#scholarrank-labels-v1\n2 1\n4294967297 1.0\n");
  Status s = ReadGroundTruthLabels(&in).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("out of range"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
}

TEST(GroundTruthLabelsTest, RejectsDuplicateAndBadImpact) {
  std::stringstream dup("#scholarrank-labels-v1\n3 2\n1 1.0\n1 2.0\n");
  Status s = ReadGroundTruthLabels(&dup).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("duplicate label for article 1"),
            std::string::npos)
      << s.ToString();

  std::stringstream nan("#scholarrank-labels-v1\n3 1\n1 nan\n");
  EXPECT_TRUE(ReadGroundTruthLabels(&nan).status().IsCorruption());
  std::stringstream neg("#scholarrank-labels-v1\n3 1\n1 -2.0\n");
  EXPECT_TRUE(ReadGroundTruthLabels(&neg).status().IsCorruption());
}

TEST(GroundTruthLabelsTest, RejectsTruncationAndBadCounts) {
  std::stringstream truncated("#scholarrank-labels-v1\n3 2\n1 1.0\n");
  Status s = ReadGroundTruthLabels(&truncated).status();
  ASSERT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("truncated label section"), std::string::npos)
      << s.ToString();

  std::stringstream too_many("#scholarrank-labels-v1\n2 5\n");
  EXPECT_TRUE(ReadGroundTruthLabels(&too_many).status().IsCorruption());
  std::stringstream absurd("#scholarrank-labels-v1\n99999999999 0\n");
  EXPECT_TRUE(ReadGroundTruthLabels(&absurd).status().IsCorruption());
}

TEST(GroundTruthLabelsTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/labels.txt";
  std::vector<double> impact = {2.0, 1.0};
  std::ofstream out(path);
  ASSERT_TRUE(WriteGroundTruthLabels(impact, &out).ok());
  out.close();
  EXPECT_EQ(ReadGroundTruthLabelsFile(path).value(), impact);
  EXPECT_TRUE(
      ReadGroundTruthLabelsFile("/nonexistent/l.txt").status().IsIOError());
}

}  // namespace
}  // namespace scholar
