#include "rank/katz.h"

#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(KatzTest, ScoresSumToOne) {
  RankResult r = KatzRanker().Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(KatzTest, UncitedNodesScoreZero) {
  // Unlike PageRank (teleport floor), Katz gives path-less nodes nothing.
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {{2, 0}});
  RankResult r = KatzRanker().Rank(g).value();
  EXPECT_GT(r.scores[0], 0.0);
  EXPECT_DOUBLE_EQ(r.scores[1], 0.0);
  EXPECT_DOUBLE_EQ(r.scores[2], 0.0);
}

TEST(KatzTest, ChainMatchesGeometricSeries) {
  // 2 -> 1 -> 0 with alpha a: s(1) = a, s(0) = a + a^2 (before
  // normalization).
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {{1, 0}, {2, 1}});
  KatzOptions o;
  o.alpha = 0.1;
  o.tolerance = 1e-15;
  RankResult r = KatzRanker(o).Rank(g).value();
  const double s1 = 0.1, s0 = 0.1 + 0.01;
  const double total = s0 + s1;
  EXPECT_NEAR(r.scores[0], s0 / total, 1e-10);
  EXPECT_NEAR(r.scores[1], s1 / total, 1e-10);
  EXPECT_NEAR(r.scores[2], 0.0, 1e-12);
}

TEST(KatzTest, MoreCitedScoresHigher) {
  CitationGraph g = MakeRandomGraph(300, 4, 1990, 10, 5);
  RankResult r = KatzRanker().Rank(g).value();
  // Spot-check: the most cited node must beat an uncited node.
  NodeId most_cited = 0;
  NodeId uncited = kInvalidNode;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) > g.InDegree(most_cited)) most_cited = v;
    if (g.InDegree(v) == 0) uncited = v;
  }
  ASSERT_NE(uncited, kInvalidNode);
  EXPECT_GT(r.scores[most_cited], r.scores[uncited]);
}

TEST(KatzTest, DivergenceDetected) {
  // A 2-cycle has lambda_max = 1, so any alpha in (0,1) converges... use a
  // dense clique-ish graph where lambda_max is large: 30 nodes, everyone
  // cites everyone older, alpha = 0.9 diverges.
  GraphBuilder builder;
  builder.AddNodes(30, 2000);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
    }
  }
  // Add a cycle so paths are unbounded.
  SCHOLAR_CHECK_OK(builder.AddEdge(0, 29));
  CitationGraph g = std::move(builder).Build().value();
  KatzOptions o;
  o.alpha = 0.9;
  o.max_iterations = 500;
  auto result = KatzRanker(o).Rank(g);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KatzTest, RejectsBadOptions) {
  KatzOptions o;
  o.alpha = 0.0;
  EXPECT_TRUE(
      KatzRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
  o.alpha = 1.0;
  EXPECT_TRUE(
      KatzRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
  o = KatzOptions();
  o.max_iterations = 0;
  EXPECT_TRUE(
      KatzRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
}

TEST(KatzTest, EmptyGraph) {
  RankResult r = KatzRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

}  // namespace
}  // namespace scholar
