#include "graph/graph_stats.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(GraphStatsTest, EmptyGraph) {
  GraphStats s = ComputeGraphStats(CitationGraph());
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_EQ(s.min_year, kUnknownYear);
}

TEST(GraphStatsTest, TinyGraphCounts) {
  GraphStats s = ComputeGraphStats(MakeTinyGraph());
  EXPECT_EQ(s.num_nodes, 5u);
  EXPECT_EQ(s.num_edges, 6u);
  EXPECT_EQ(s.min_year, 2000);
  EXPECT_EQ(s.max_year, 2004);
  EXPECT_EQ(s.num_dangling, 2u);  // nodes 0 and 1
  EXPECT_EQ(s.num_uncited, 1u);   // node 4
  EXPECT_DOUBLE_EQ(s.mean_out_degree, 6.0 / 5.0);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.max_out_degree, 2u);
}

TEST(GraphStatsTest, YearHistogram) {
  CitationGraph g = MakeGraph({2000, 2000, 2001}, {});
  GraphStats s = ComputeGraphStats(g);
  ASSERT_EQ(s.year_histogram.size(), 2u);
  EXPECT_EQ(s.year_histogram.at(2000), 2u);
  EXPECT_EQ(s.year_histogram.at(2001), 1u);
}

TEST(GraphStatsTest, GiniZeroForUniformDegrees) {
  // Ring-like structure: everyone has in-degree exactly 1.
  CitationGraph g = MakeGraph({2000, 2000, 2000, 2000},
                              {{1, 0}, {2, 1}, {3, 2}, {0, 3}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_NEAR(s.in_degree_gini, 0.0, 1e-12);
}

TEST(GraphStatsTest, GiniHighForStarGraph) {
  // Node 0 receives everything.
  std::vector<Year> years(50, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 50; ++u) edges.push_back({u, 0});
  GraphStats s = ComputeGraphStats(MakeGraph(years, edges));
  EXPECT_GT(s.in_degree_gini, 0.9);
}

TEST(GraphStatsTest, GiniIsZeroWhenNoEdges) {
  GraphStats s = ComputeGraphStats(MakeGraph({2000, 2001}, {}));
  EXPECT_DOUBLE_EQ(s.in_degree_gini, 0.0);
}

TEST(InDegreeHistogramTest, CountsPerDegree) {
  CitationGraph g = MakeTinyGraph();
  // In-degrees: node0=2, node1=1, node2=2, node3=1, node4=0.
  std::vector<size_t> hist = InDegreeHistogram(g);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
}

TEST(InDegreeHistogramTest, SumsToNodeCount) {
  CitationGraph g = MakeRandomGraph(400, 5.0, 1990, 10, 21);
  std::vector<size_t> hist = InDegreeHistogram(g);
  size_t total = 0;
  for (size_t c : hist) total += c;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(GraphStatsTest, ToStringMentionsKeyNumbers) {
  std::string text = ToString(ComputeGraphStats(MakeTinyGraph()));
  EXPECT_NE(text.find("nodes"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
  EXPECT_NE(text.find("6"), std::string::npos);
}

}  // namespace
}  // namespace scholar
