// Property suite for the iteration engine (src/rank/kernel/).
//
// The engine's contracts, checked across every kernel that gathers
// through it (pagerank, twpr, katz, sceas, hits) and across thread
// counts {1, 2, 4, 8}:
//
//   * scalar vs SIMD (double): bit-identical — both reduce each row
//     through the same lane-striped addition tree;
//   * float score mirror: <= 1e-6 absolute drift vs the double path;
//   * delta-varint in-CSR: decoded ids identical, so scores
//     bit-identical to the raw adjacency;
//   * hub-first source relabel: pure layout permutation, bit-identical;
//   * weight codebook: byte codes into a table of the original weight
//     values, bit-identical to the raw weight stream, with a silent
//     fallback past 256 distinct values;
//   * adaptive convergence: final scores within tolerance of the
//     fixed-sweep reference;
//   * the checked varint decoder round-trips real adjacency rows and
//     rejects each corruption class with a typed status.

#include "rank/kernel/kernel_options.h"

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "core/registry.h"
#include "graph/graph_access.h"
#include "rank/kernel/compressed_csr.h"
#include "rank/kernel/gather_engine.h"
#include "rank/kernel/simd.h"
#include "test_util.h"
#include "util/config.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

constexpr const char* kEngineKernels[] = {"pagerank", "twpr", "katz",
                                          "sceas", "hits"};
constexpr int kThreadCounts[] = {1, 2, 4, 8};

Config KernelConfig(const std::string& simd, const std::string& precision,
                    const std::string& compression, bool adaptive,
                    int threads) {
  Config config;
  config.Set("simd", simd);
  config.Set("score_precision", precision);
  config.Set("csr_compression", compression);
  config.SetBool("adaptive", adaptive);
  config.SetInt("threads", threads);
  return config;
}

std::vector<double> RunKernel(const std::string& kernel, const CitationGraph& g,
                        const Config& config) {
  auto ranker = MakeRanker(kernel, config).value();
  return ranker->Rank(g).value().scores;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

// Exact (bit-level) equality, with a useful message on failure.
void ExpectBitIdentical(const std::vector<double>& got,
                        const std::vector<double>& want,
                        const std::string& label) {
  EXPECT_TRUE(got == want) << label
                           << ": max abs diff = " << MaxAbsDiff(got, want);
}

CitationGraph TestGraph() {
  // Big enough that every thread count gets real chunks and rows span
  // several SIMD strips; small enough that the full matrix stays fast.
  return MakeRandomGraph(/*n=*/600, /*avg_degree=*/6, /*start_year=*/1990,
                         /*num_years=*/12, /*seed=*/7);
}

// --- scalar vs SIMD bit-identity (double) -------------------------------

TEST(KernelBitIdentityTest, SimdMatchesScalarAcrossKernelsAndThreads) {
  const CitationGraph g = TestGraph();
  std::vector<std::string> simd_modes = {"scalar", "auto"};
  if (kernel::DetectSimdLevel() == kernel::SimdLevel::kAvx2) {
    simd_modes.push_back("avx2");
  }
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    ASSERT_EQ(oracle.size(), g.num_nodes()) << kernel;
    for (const std::string& simd : simd_modes) {
      for (int threads : kThreadCounts) {
        const std::vector<double> scores = RunKernel(
            kernel, g, KernelConfig(simd, "double", "none", false, threads));
        ExpectBitIdentical(scores, oracle,
                           std::string(kernel) + " simd=" + simd +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(KernelBitIdentityTest, TinyAndEdgeCaseGraphs) {
  // Dangling nodes, empty rows, rows shorter than one SIMD strip.
  const CitationGraph g = MakeTinyGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    const std::vector<double> simd =
        RunKernel(kernel, g, KernelConfig("auto", "double", "none", false, 2));
    ExpectBitIdentical(simd, oracle, std::string(kernel) + " tiny");
  }
}

// --- float score mirror drift bound -------------------------------------

TEST(KernelFloatDriftTest, FloatScoresWithinBound) {
  const CitationGraph g = TestGraph();
  constexpr double kDriftBound = 1e-6;
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    for (const std::string& simd : {std::string("scalar"), std::string("auto")}) {
      const std::vector<double> scores =
          RunKernel(kernel, g, KernelConfig(simd, "float", "none", false, 1));
      const double drift = MaxAbsDiff(scores, oracle);
      EXPECT_LE(drift, kDriftBound)
          << kernel << " simd=" << simd << " float drift " << drift;
    }
  }
}

// --- compressed in-CSR --------------------------------------------------

TEST(KernelCompressionTest, CompressedScoresBitIdentical) {
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    for (int threads : {1, 4}) {
      const std::vector<double> scores = RunKernel(
          kernel, g,
          KernelConfig("auto", "double", "delta_varint", false, threads));
      ExpectBitIdentical(scores, oracle,
                         std::string(kernel) + " delta_varint threads=" +
                             std::to_string(threads));
    }
  }
}

TEST(KernelCompressionTest, TrustedDecodeReproducesRawAdjacency) {
  const CitationGraph g = TestGraph();
  const GraphAccess a = AccessOf(g);
  kernel::CompressedInCsr csr;
  csr.Build(a.in_begin, a.in_end, a.in_neighbors, a.num_nodes,
            /*pool=*/nullptr);
  ASSERT_EQ(csr.num_rows(), a.num_nodes);
  std::vector<NodeId> decoded(csr.max_row_degree());
  for (size_t v = 0; v < a.num_nodes; ++v) {
    const size_t k = a.InDegree(static_cast<NodeId>(v));
    csr.DecodeRow(v, k, decoded.data());
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(decoded[i], a.in_neighbors[a.in_begin[v] + i])
          << "row " << v << " pos " << i;
    }
  }
}

TEST(KernelCompressionTest, CheckedDecodeRoundTripsRealRows) {
  const CitationGraph g = TestGraph();
  const GraphAccess a = AccessOf(g);
  const uint32_t max_id = static_cast<uint32_t>(a.num_nodes);
  std::vector<uint8_t> bytes;
  std::vector<NodeId> decoded;
  for (size_t v = 0; v < a.num_nodes; ++v) {
    const size_t k = a.InDegree(static_cast<NodeId>(v));
    bytes.clear();
    kernel::EncodeVarintRow(a.in_neighbors + a.in_begin[v], k, &bytes);
    decoded.assign(k, 0);
    size_t consumed = 0;
    ASSERT_TRUE(kernel::DecodeVarintRowChecked(bytes.data(), bytes.size(), k,
                                               max_id, decoded.data(),
                                               &consumed)
                    .ok())
        << "row " << v;
    EXPECT_EQ(consumed, bytes.size());
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(decoded[i], a.in_neighbors[a.in_begin[v] + i]);
    }
  }
}

TEST(KernelCompressionTest, CheckedDecodeRejectsCorruptRows) {
  const NodeId row[] = {0, 3, 7, 250, 511};
  constexpr size_t kCount = 5;
  std::vector<uint8_t> bytes;
  kernel::EncodeVarintRow(row, kCount, &bytes);
  std::vector<NodeId> out(kCount);
  size_t consumed = 0;

  // Baseline: the intact row decodes.
  ASSERT_TRUE(kernel::DecodeVarintRowChecked(bytes.data(), bytes.size(),
                                             kCount, 512, out.data(),
                                             &consumed)
                  .ok());

  // Truncation: drop the final byte.
  Status s = kernel::DecodeVarintRowChecked(bytes.data(), bytes.size() - 1,
                                            kCount, 512, out.data(),
                                            &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Varint longer than 10 bytes.
  std::vector<uint8_t> too_long(11, 0x80);
  too_long.push_back(0x01);
  s = kernel::DecodeVarintRowChecked(too_long.data(), too_long.size(), 1, 512,
                                     out.data(), &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // A 10-byte varint whose delta lands far outside [0, max_id).
  std::vector<uint8_t> overflow(9, 0x80);
  overflow.push_back(0x01);  // zigzag-decodes to 2^62
  s = kernel::DecodeVarintRowChecked(overflow.data(), overflow.size(), 1, 512,
                                     out.data(), &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // A negative running sum: first delta is zigzag(-1).
  const uint8_t negative[] = {0x01};
  s = kernel::DecodeVarintRowChecked(negative, 1, 1, 512, out.data(),
                                     &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // In-range bytes, but max_id_exclusive cuts the row's ids off.
  s = kernel::DecodeVarintRowChecked(bytes.data(), bytes.size(), kCount, 100,
                                     out.data(), &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Validate-only (null out) agrees with the storing decode.
  s = kernel::DecodeVarintRowChecked(bytes.data(), bytes.size() - 1, kCount,
                                     512, nullptr, &consumed);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  s = kernel::DecodeVarintRowChecked(bytes.data(), bytes.size(), kCount, 512,
                                     nullptr, &consumed);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(consumed, bytes.size());
}

// --- hub-first source relabel -------------------------------------------

TEST(KernelHubOrderTest, HubOrderBitIdentical) {
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    Config config = KernelConfig("auto", "double", "delta_varint", false, 2);
    config.SetBool("hub_order", true);
    const std::vector<double> scores = RunKernel(kernel, g, config);
    ExpectBitIdentical(scores, oracle, std::string(kernel) + " hub_order");
  }
}

// --- weight codebook ----------------------------------------------------

TEST(KernelCodebookTest, CodebookBitIdenticalAcrossKernelsAndThreads) {
  // The table round-trips the exact weight bits, so every kernel —
  // including the unweighted ones, where the knob is a no-op — must
  // reproduce the raw-weight scores bit for bit.
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> oracle =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    for (const std::string& simd : {std::string("scalar"), std::string("auto")}) {
      for (int threads : {1, 4}) {
        Config config = KernelConfig(simd, "double", "none", false, threads);
        config.SetBool("weight_codebook", true);
        const std::vector<double> scores = RunKernel(kernel, g, config);
        ExpectBitIdentical(scores, oracle,
                           std::string(kernel) + " weight_codebook simd=" +
                               simd + " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(KernelCodebookTest, CodebookFloatMatchesFloatMirror) {
  // In float mode the table stores float(weight) — the same value the
  // raw path's mirror holds — so codebook-f32 is bit-identical to
  // plain-f32, not merely within the 1e-6 drift bound.
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> plain_f32 =
        RunKernel(kernel, g, KernelConfig("auto", "float", "none", false, 2));
    Config config = KernelConfig("auto", "float", "none", false, 2);
    config.SetBool("weight_codebook", true);
    const std::vector<double> coded_f32 = RunKernel(kernel, g, config);
    ExpectBitIdentical(coded_f32, plain_f32,
                       std::string(kernel) + " codebook f32");
  }
}

TEST(KernelCodebookTest, EngineBuildsTableAndFallsBackPast256) {
  const CitationGraph g = TestGraph();
  const GraphAccess a = AccessOf(g);
  const size_t num_edges = g.num_edges();
  ASSERT_GT(num_edges, 256u);

  std::vector<double> contrib(a.num_nodes);
  for (size_t u = 0; u < a.num_nodes; ++u) {
    contrib[u] = 1.0 / static_cast<double>(u + 1);
  }

  kernel::KernelOptions raw_opts;
  kernel::GatherEngine raw_engine;
  ASSERT_TRUE(raw_engine
                  .Init(a, kernel::GatherDirection::kInEdges, raw_opts,
                        /*pool=*/nullptr)
                  .ok());
  kernel::KernelOptions coded_opts;
  coded_opts.weight_codebook = true;
  kernel::GatherEngine coded_engine;
  ASSERT_TRUE(coded_engine
                  .Init(a, kernel::GatherDirection::kInEdges, coded_opts,
                        /*pool=*/nullptr)
                  .ok());

  // A small distinct-value set (7 values, TWPR-shaped): codebook engages.
  std::vector<double> few(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    few[e] = std::exp(-0.3 * static_cast<double>(e % 7));
  }
  {
    const double* want = raw_engine.Gather(contrib.data(), few.data());
    const double* got = coded_engine.Gather(contrib.data(), few.data());
    EXPECT_TRUE(coded_engine.codebook_active());
    EXPECT_EQ(coded_engine.codebook_entries(), 7u);
    for (size_t v = 0; v < a.num_nodes; ++v) {
      ASSERT_EQ(got[v], want[v]) << "codebook row " << v;
    }
  }

  // All-distinct weights: the build declines and the sweep falls back to
  // the raw stream, still bit-identical.
  std::vector<double> many(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    many[e] = 1.0 + static_cast<double>(e) * 1e-9;
  }
  {
    const double* want = raw_engine.Gather(contrib.data(), many.data());
    const double* got = coded_engine.Gather(contrib.data(), many.data());
    EXPECT_FALSE(coded_engine.codebook_active());
    EXPECT_EQ(coded_engine.codebook_entries(), 0u);
    for (size_t v = 0; v < a.num_nodes; ++v) {
      ASSERT_EQ(got[v], want[v]) << "fallback row " << v;
    }
  }
}

// --- adaptive convergence -----------------------------------------------

TEST(KernelAdaptiveTest, AdaptiveMatchesFixedAcrossKernelsAndThreads) {
  const CitationGraph g = TestGraph();
  // Default adaptive_tolerance (1e-13) freezes rows only once their
  // inputs have stopped moving at that scale; the committed scores may
  // lag the fixed-sweep reference by the frozen rows' residual budget.
  constexpr double kTolerance = 1e-9;
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> fixed =
        RunKernel(kernel, g, KernelConfig("auto", "double", "none", false, 1));
    for (int threads : kThreadCounts) {
      const std::vector<double> adaptive = RunKernel(
          kernel, g, KernelConfig("auto", "double", "none", true, threads));
      const double diff = MaxAbsDiff(adaptive, fixed);
      EXPECT_LE(diff, kTolerance)
          << kernel << " adaptive threads=" << threads << " diff " << diff;
    }
  }
}

TEST(KernelAdaptiveTest, ZeroToleranceIsExactSkipping) {
  // adaptive_tolerance=0 skips a row only when its inputs are bit-equal,
  // so the trajectory — not just the fixed point — is bit-identical.
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> fixed =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    Config config = KernelConfig("auto", "double", "none", true, 2);
    config.SetDouble("adaptive_tolerance", 0.0);
    const std::vector<double> adaptive = RunKernel(kernel, g, config);
    ExpectBitIdentical(adaptive, fixed,
                       std::string(kernel) + " adaptive_tolerance=0");
  }
}

// --- legacy baseline ----------------------------------------------------

TEST(KernelLegacyTest, LegacyWithinRegroupingNoiseOfScalar) {
  // kLegacy keeps the PR-2 sequential accumulation order; it differs from
  // the striped oracle only by floating-point regrouping.
  const CitationGraph g = TestGraph();
  for (const char* kernel : kEngineKernels) {
    const std::vector<double> striped =
        RunKernel(kernel, g, KernelConfig("scalar", "double", "none", false, 1));
    const std::vector<double> legacy =
        RunKernel(kernel, g, KernelConfig("legacy", "double", "none", false, 1));
    const double diff = MaxAbsDiff(legacy, striped);
    EXPECT_LE(diff, 1e-9) << kernel << " legacy-vs-scalar diff " << diff;
  }
}

// --- option parsing -----------------------------------------------------

TEST(KernelOptionsTest, ParsesEverySpelling) {
  Config config;
  config.Set("simd", "avx2");
  config.Set("score_precision", "f32");
  config.Set("csr_compression", "varint");
  config.SetBool("hub_order", true);
  config.SetBool("weight_codebook", true);
  config.SetBool("adaptive", true);
  config.SetDouble("adaptive_tolerance", 1e-10);
  const kernel::KernelOptions opts =
      kernel::KernelOptionsFromConfig(config).value();
  EXPECT_EQ(opts.simd, kernel::SimdMode::kAvx2);
  EXPECT_EQ(opts.precision, kernel::ScorePrecision::kFloat);
  EXPECT_EQ(opts.compression, kernel::CsrCompression::kDeltaVarint);
  EXPECT_TRUE(opts.hub_order);
  EXPECT_TRUE(opts.weight_codebook);
  EXPECT_TRUE(opts.adaptive);
  EXPECT_DOUBLE_EQ(opts.adaptive_tolerance, 1e-10);

  // Alternate spellings and defaults.
  EXPECT_EQ(kernel::SimdModeFromString("legacy").value(),
            kernel::SimdMode::kLegacy);
  EXPECT_EQ(kernel::ScorePrecisionFromString("f64").value(),
            kernel::ScorePrecision::kDouble);
  EXPECT_EQ(kernel::CsrCompressionFromString("delta_varint").value(),
            kernel::CsrCompression::kDeltaVarint);
  const kernel::KernelOptions defaults =
      kernel::KernelOptionsFromConfig(Config()).value();
  EXPECT_EQ(defaults.simd, kernel::SimdMode::kAuto);
  EXPECT_EQ(defaults.precision, kernel::ScorePrecision::kDouble);
  EXPECT_EQ(defaults.compression, kernel::CsrCompression::kNone);
  EXPECT_FALSE(defaults.hub_order);
  EXPECT_FALSE(defaults.weight_codebook);
  EXPECT_FALSE(defaults.adaptive);
}

TEST(KernelOptionsTest, RejectsUnknownSpellings) {
  {
    Config config;
    config.Set("simd", "sse9");
    EXPECT_TRUE(kernel::KernelOptionsFromConfig(config)
                    .status()
                    .IsInvalidArgument());
  }
  {
    Config config;
    config.Set("score_precision", "half");
    EXPECT_TRUE(kernel::KernelOptionsFromConfig(config)
                    .status()
                    .IsInvalidArgument());
  }
  {
    Config config;
    config.Set("csr_compression", "gzip");
    EXPECT_TRUE(kernel::KernelOptionsFromConfig(config)
                    .status()
                    .IsInvalidArgument());
  }
  {
    Config config;
    config.SetDouble("adaptive_tolerance", -1e-9);
    EXPECT_TRUE(kernel::KernelOptionsFromConfig(config)
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(KernelOptionsTest, RegistryPropagatesBadKernelKeys) {
  Config config;
  config.Set("simd", "not-an-isa");
  for (const char* kernel : kEngineKernels) {
    const auto result = MakeRanker(kernel, config);
    EXPECT_FALSE(result.ok()) << kernel;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << kernel;
  }
}

// --- explicit avx2 on hosts without it ----------------------------------

TEST(KernelSimdTest, ExplicitAvx2MatchesHostCapability) {
  const CitationGraph g = MakeTinyGraph();
  auto ranker =
      MakeRanker("pagerank", KernelConfig("avx2", "double", "none", false, 1))
          .value();
  const auto result = ranker->Rank(g);
  if (kernel::DetectSimdLevel() == kernel::SimdLevel::kAvx2) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  } else {
    // simd=avx2 is an explicit demand, not a hint: refused at setup.
    EXPECT_FALSE(result.ok());
  }
}

}  // namespace
}  // namespace scholar
