#include "core/registry.h"

#include <gtest/gtest.h>

#include "ensemble/ensemble_ranker.h"
#include "rank/citerank.h"
#include "rank/pagerank.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

TEST(RegistryTest, AllKnownNamesConstruct) {
  for (const std::string& name : KnownRankerNames()) {
    auto ranker = MakeRanker(name);
    ASSERT_TRUE(ranker.ok()) << name << ": " << ranker.status().ToString();
    EXPECT_EQ(ranker.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeRanker("salsa").status().IsNotFound());
  EXPECT_TRUE(MakeRanker("ens_salsa").status().IsNotFound());
}

TEST(RegistryTest, NamesAreCaseInsensitive) {
  EXPECT_TRUE(MakeRanker("PageRank").ok());
  EXPECT_TRUE(MakeRanker("TWPR").ok());
  EXPECT_TRUE(MakeRanker("ENS_TWPR").ok());
}

TEST(RegistryTest, PrAliasForPageRank) {
  EXPECT_EQ(MakeRanker("pr").value()->name(), "pagerank");
}

TEST(RegistryTest, ConfigParametersReachTheRanker) {
  Config config;
  config.SetDouble("sigma", 0.77);
  config.SetDouble("damping", 0.7);
  auto ranker = MakeRanker("twpr", config).value();
  const auto* twpr = dynamic_cast<const TimeWeightedPageRank*>(ranker.get());
  ASSERT_NE(twpr, nullptr);
  EXPECT_DOUBLE_EQ(twpr->options().sigma, 0.77);
  EXPECT_DOUBLE_EQ(twpr->options().power.damping, 0.7);
}

TEST(RegistryTest, ThreadsKeyReachesEveryParallelRanker) {
  Config config;
  config.SetInt("threads", 3);
  {
    auto ranker = MakeRanker("pagerank", config).value();
    const auto* pr = dynamic_cast<const PageRankRanker*>(ranker.get());
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->options().threads, 3);
  }
  {
    auto ranker = MakeRanker("twpr", config).value();
    const auto* twpr =
        dynamic_cast<const TimeWeightedPageRank*>(ranker.get());
    ASSERT_NE(twpr, nullptr);
    EXPECT_EQ(twpr->options().power.threads, 3);
  }
  {
    auto ranker = MakeRanker("ens_pagerank", config).value();
    const auto* ens = dynamic_cast<const EnsembleRanker*>(ranker.get());
    ASSERT_NE(ens, nullptr);
    EXPECT_EQ(ens->options().threads, 3);
    const auto* base = dynamic_cast<const PageRankRanker*>(&ens->base());
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base->options().threads, 3);
  }
}

TEST(RegistryTest, CiteRankTauPlumbed) {
  Config config;
  config.SetDouble("tau", 4.5);
  auto ranker = MakeRanker("citerank", config).value();
  const auto* cr = dynamic_cast<const CiteRankRanker*>(ranker.get());
  ASSERT_NE(cr, nullptr);
  EXPECT_DOUBLE_EQ(cr->options().tau, 4.5);
}

TEST(RegistryTest, EnsembleWrapsConfiguredBase) {
  Config config;
  config.SetInt("num_slices", 5);
  config.Set("normalizer", "max");
  config.Set("scope", "snapshot");
  config.Set("combiner", "recency");
  config.SetDouble("ens_gamma", 0.6);
  config.SetInt("window", 3);
  config.SetDouble("sigma", 0.9);
  auto ranker = MakeRanker("ens_twpr", config).value();
  const auto* ens = dynamic_cast<const EnsembleRanker*>(ranker.get());
  ASSERT_NE(ens, nullptr);
  EXPECT_EQ(ens->options().num_slices, 5);
  EXPECT_EQ(ens->options().normalizer, NormalizerKind::kMax);
  EXPECT_EQ(ens->options().scope, NormalizationScope::kSnapshot);
  EXPECT_EQ(ens->options().combiner, EnsembleCombiner::kRecencyWeighted);
  EXPECT_DOUBLE_EQ(ens->options().gamma, 0.6);
  EXPECT_EQ(ens->options().window, 3);
  const auto* base =
      dynamic_cast<const TimeWeightedPageRank*>(&ens->base());
  ASSERT_NE(base, nullptr);
  EXPECT_DOUBLE_EQ(base->options().sigma, 0.9);
}

TEST(RegistryTest, BadEnumValuesAreInvalidArgument) {
  Config config;
  config.Set("normalizer", "weird");
  EXPECT_TRUE(
      MakeRanker("ens_pagerank", config).status().IsInvalidArgument());
  Config config2;
  config2.Set("partition", "weird");
  EXPECT_TRUE(
      MakeRanker("ens_pagerank", config2).status().IsInvalidArgument());
  Config config3;
  config3.Set("combiner", "weird");
  EXPECT_TRUE(
      MakeRanker("ens_pagerank", config3).status().IsInvalidArgument());
}

TEST(RegistryTest, ConstructedRankersActuallyRank) {
  CitationGraph g = testing_util::MakeRandomGraph(100, 3, 1990, 10, 5);
  for (const std::string& name : KnownRankerNames()) {
    if (name == "futurerank" || name == "venuerank") {
      continue;  // need author / venue data beyond the bare graph
    }
    auto ranker = MakeRanker(name).value();
    auto result = ranker->Rank(g);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result.value().scores.size(), g.num_nodes()) << name;
  }
}

}  // namespace
}  // namespace scholar
