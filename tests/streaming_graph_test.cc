#include "stream/streaming_graph.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace scholar {
namespace stream {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeTinyGraph;

EdgeBatch Batch(uint64_t sequence, std::vector<Year> years,
                std::vector<StreamEdge> edges) {
  EdgeBatch batch;
  batch.sequence = sequence;
  batch.node_years = std::move(years);
  batch.edges = std::move(edges);
  return batch;
}

TEST(StreamingGraphTest, StartsAsTheBaseGraph) {
  StreamingGraph stream(MakeTinyGraph());
  EXPECT_EQ(stream.num_nodes(), 5u);
  EXPECT_EQ(stream.num_edges(), 6u);
  EXPECT_EQ(stream.frontier_year(), 2004);
  EXPECT_EQ(stream.next_sequence(), 1u);
  EXPECT_EQ(stream.version(), 0u);
  EXPECT_EQ(stream.graph().num_nodes(), 5u);
}

TEST(StreamingGraphTest, AppliedBatchMatchesBatchBuiltGraph) {
  StreamingGraph stream(MakeTinyGraph());
  Result<size_t> applied =
      stream.Ingest(Batch(1, {2005, 2006}, {{5, 0}, {5, 4}, {6, 5}}));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 1u);
  EXPECT_EQ(stream.version(), 1u);
  EXPECT_EQ(stream.frontier_year(), 2006);

  // Oracle: the same corpus built in one shot. Forward and reverse CSR,
  // years, and degree structure must be identical.
  CitationGraph oracle = MakeGraph(
      {2000, 2001, 2002, 2003, 2004, 2005, 2006},
      {{2, 0}, {2, 1}, {3, 0}, {3, 2}, {4, 2}, {4, 3}, {5, 0}, {5, 4},
       {6, 5}});
  const CitationGraph& grown = stream.graph();
  EXPECT_EQ(grown.years(), oracle.years());
  EXPECT_EQ(grown.out_offsets(), oracle.out_offsets());
  EXPECT_EQ(grown.out_neighbors(), oracle.out_neighbors());
  ASSERT_EQ(grown.num_nodes(), oracle.num_nodes());
  for (NodeId v = 0; v < oracle.num_nodes(); ++v) {
    EXPECT_EQ(grown.InDegree(v), oracle.InDegree(v)) << v;
  }
}

TEST(StreamingGraphTest, EmptyHeartbeatBatchAdvancesSequenceOnly) {
  StreamingGraph stream(MakeTinyGraph());
  Result<size_t> applied = stream.Ingest(Batch(1, {}, {}));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 1u);
  EXPECT_EQ(stream.num_nodes(), 5u);
  EXPECT_EQ(stream.next_sequence(), 2u);
}

TEST(StreamingGraphTest, OutOfOrderBatchIsStagedThenDrained) {
  StreamingGraph stream(MakeTinyGraph());
  // Sequence 2 arrives first: staged, graph untouched.
  Result<size_t> staged = stream.Ingest(Batch(2, {2006}, {{6, 5}}));
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_EQ(*staged, 0u);
  EXPECT_EQ(stream.staged_batches(), 1u);
  EXPECT_EQ(stream.num_nodes(), 5u);

  // Sequence 1 fills the gap: both apply in one Ingest.
  Result<size_t> applied = stream.Ingest(Batch(1, {2005}, {{5, 0}}));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 2u);
  EXPECT_EQ(stream.staged_batches(), 0u);
  EXPECT_EQ(stream.num_nodes(), 7u);
  EXPECT_EQ(stream.next_sequence(), 3u);
}

TEST(StreamingGraphTest, DuplicateSequenceIsAlreadyExists) {
  StreamingGraph stream(MakeTinyGraph());
  ASSERT_TRUE(stream.Ingest(Batch(1, {2005}, {{5, 0}})).ok());
  EXPECT_EQ(stream.Ingest(Batch(1, {2005}, {{5, 0}})).status().code(),
            StatusCode::kAlreadyExists);
  // A duplicate of a *staged* sequence is also rejected.
  ASSERT_TRUE(stream.Ingest(Batch(3, {2006}, {})).ok());
  EXPECT_EQ(stream.Ingest(Batch(3, {2007}, {})).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(StreamingGraphTest, StagingBufferIsBounded) {
  StreamingGraphOptions options;
  options.max_staged_batches = 2;
  StreamingGraph stream(MakeTinyGraph(), options);
  ASSERT_TRUE(stream.Ingest(Batch(5, {2005}, {})).ok());
  ASSERT_TRUE(stream.Ingest(Batch(9, {2005}, {})).ok());
  EXPECT_EQ(stream.Ingest(Batch(7, {2005}, {})).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.staged_batches(), 2u);
}

TEST(StreamingGraphTest, YearBelowFrontierIsRejected) {
  StreamingGraph stream(MakeTinyGraph());  // frontier 2004
  Result<size_t> applied = stream.Ingest(Batch(1, {2003}, {}));
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.num_nodes(), 5u);
  // The failed batch did not consume its sequence number.
  EXPECT_EQ(stream.next_sequence(), 1u);
}

TEST(StreamingGraphTest, SuffixOnlyContractRejectsOldSources) {
  StreamingGraph stream(MakeTinyGraph());
  // Source 3 exists but predates the batch: reference lists are complete
  // at publication, so old rows never grow.
  EXPECT_FALSE(stream.Ingest(Batch(1, {2005}, {{3, 0}})).ok());
  EXPECT_EQ(stream.num_nodes(), 5u);
}

TEST(StreamingGraphTest, RejectsDanglingTargetSelfLoopAndUnsorted) {
  StreamingGraph stream(MakeTinyGraph());
  EXPECT_FALSE(stream.Ingest(Batch(1, {2005}, {{5, 9}})).ok());   // no node 9
  EXPECT_FALSE(stream.Ingest(Batch(1, {2005}, {{5, 5}})).ok());   // self-loop
  EXPECT_FALSE(
      stream.Ingest(Batch(1, {2005, 2005}, {{6, 0}, {5, 0}})).ok());
  EXPECT_FALSE(
      stream.Ingest(Batch(1, {2005}, {{5, 0}, {5, 0}})).ok());    // duplicate
  EXPECT_EQ(stream.num_nodes(), 5u);
  EXPECT_EQ(stream.version(), 0u);
}

TEST(StreamingGraphTest, FailedValidationDoesNotWedgeTheStream) {
  StreamingGraph stream(MakeTinyGraph());
  // A bad batch at the expected sequence is dropped without consuming the
  // sequence number; its corrected retransmission then applies.
  ASSERT_FALSE(stream.Ingest(Batch(1, {2005}, {{5, 9}})).ok());
  Result<size_t> retry = stream.Ingest(Batch(1, {2005}, {{5, 0}}));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(*retry, 1u);
  EXPECT_EQ(stream.num_nodes(), 6u);
}

TEST(StreamingGraphTest, GraphViewIsRebuiltLazilyPerVersion) {
  StreamingGraph stream(MakeTinyGraph());
  const CitationGraph& v0 = stream.graph();
  EXPECT_EQ(v0.num_nodes(), 5u);
  ASSERT_TRUE(stream.Ingest(Batch(1, {2005}, {{5, 0}, {5, 2}})).ok());
  const CitationGraph& v1 = stream.graph();
  EXPECT_EQ(v1.num_nodes(), 6u);
  EXPECT_EQ(v1.InDegree(0), 3u);  // reverse CSR reflects the new edge
  EXPECT_EQ(v1.InDegree(2), 3u);
  // Repeated calls without new batches return the same frozen graph.
  EXPECT_EQ(&stream.graph(), &v1);
}

TEST(StreamingGraphTest, ManySmallBatchesEqualOneBigBuild) {
  StreamingGraph stream(MakeGraph({2000}, {}));
  std::vector<Year> years = {2000};
  std::vector<std::pair<NodeId, NodeId>> all_edges;
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    const NodeId id = static_cast<NodeId>(seq);
    const Year year = static_cast<Year>(2000 + seq / 4);
    // Each new article cites article id-1 and article 0 (when distinct).
    std::vector<StreamEdge> edges = {{id, static_cast<NodeId>(id - 1)}};
    if (id > 1) edges.insert(edges.begin(), {id, 0});
    ASSERT_TRUE(stream.Ingest(Batch(seq, {year}, edges)).ok()) << seq;
    years.push_back(year);
    for (const StreamEdge& e : edges) all_edges.push_back({e.src, e.dst});
  }
  CitationGraph oracle = MakeGraph(years, all_edges);
  const CitationGraph& grown = stream.graph();
  EXPECT_EQ(grown.years(), oracle.years());
  EXPECT_EQ(grown.out_offsets(), oracle.out_offsets());
  EXPECT_EQ(grown.out_neighbors(), oracle.out_neighbors());
}

}  // namespace
}  // namespace stream
}  // namespace scholar
