#include "graph/time_slicer.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(ExtractSnapshotTest, KeepsOnlyOldEnoughArticles) {
  CitationGraph g = MakeTinyGraph();  // years 2000..2004
  Snapshot snap = ExtractSnapshot(g, 2002);
  EXPECT_EQ(snap.graph.num_nodes(), 3u);  // nodes 0,1,2
  EXPECT_EQ(snap.boundary_year, 2002);
  // Edges among kept nodes: 2->0, 2->1.
  EXPECT_EQ(snap.graph.num_edges(), 2u);
}

TEST(ExtractSnapshotTest, MappingsRoundTrip) {
  CitationGraph g = MakeTinyGraph();
  Snapshot snap = ExtractSnapshot(g, 2002);
  ASSERT_EQ(snap.to_parent.size(), 3u);
  ASSERT_EQ(snap.from_parent.size(), 5u);
  for (NodeId s = 0; s < snap.graph.num_nodes(); ++s) {
    EXPECT_EQ(snap.from_parent[snap.to_parent[s]], s);
    EXPECT_EQ(snap.graph.year(s), g.year(snap.to_parent[s]));
  }
  EXPECT_EQ(snap.from_parent[3], kInvalidNode);
  EXPECT_EQ(snap.from_parent[4], kInvalidNode);
}

TEST(ExtractSnapshotTest, FullBoundaryReturnsWholeGraph) {
  CitationGraph g = MakeTinyGraph();
  Snapshot snap = ExtractSnapshot(g, 2004);
  EXPECT_EQ(snap.graph, g);
}

TEST(ExtractSnapshotTest, BoundaryBeforeEverythingIsEmpty) {
  CitationGraph g = MakeTinyGraph();
  Snapshot snap = ExtractSnapshot(g, 1999);
  EXPECT_EQ(snap.graph.num_nodes(), 0u);
  EXPECT_EQ(snap.graph.num_edges(), 0u);
}

TEST(ExtractSnapshotTest, EmptySnapshotReportsUnknownBoundaryYear) {
  // Regression: an empty snapshot used to report the requested boundary as
  // its boundary_year, implying it contained articles through that year.
  CitationGraph g = MakeTinyGraph();
  Snapshot snap = ExtractSnapshot(g, 1999);
  EXPECT_EQ(snap.boundary_year, kUnknownYear);
}

TEST(ExtractSnapshotTest, NonEmptySnapshotKeepsRequestedBoundaryYear) {
  CitationGraph g = MakeTinyGraph();  // years 2000..2004
  // The requested boundary (not the max kept year) is the contract.
  Snapshot snap = ExtractSnapshot(g, 2010);
  EXPECT_EQ(snap.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(snap.boundary_year, 2010);
}

TEST(ExtractInducedSubgraphTest, AllFalseMaskYieldsUnknownBoundaryYear) {
  CitationGraph g = MakeTinyGraph();
  std::vector<bool> mask(g.num_nodes(), false);
  Snapshot snap = ExtractInducedSubgraph(g, mask);
  EXPECT_EQ(snap.graph.num_nodes(), 0u);
  EXPECT_EQ(snap.boundary_year, kUnknownYear);
}

TEST(ExtractInducedSubgraphTest, ArbitraryMask) {
  CitationGraph g = MakeTinyGraph();
  std::vector<bool> mask = {true, false, true, true, false};
  Snapshot snap = ExtractInducedSubgraph(g, mask);
  EXPECT_EQ(snap.graph.num_nodes(), 3u);
  // Kept edges among {0,2,3}: 2->0, 3->0, 3->2.
  EXPECT_EQ(snap.graph.num_edges(), 3u);
  EXPECT_EQ(snap.boundary_year, 2003);  // max year among kept
}

TEST(ExtractSnapshotTest, IdsStayMonotone) {
  CitationGraph g = MakeRandomGraph(200, 3.0, 1990, 10, 5);
  Snapshot snap = ExtractSnapshot(g, 1995);
  for (size_t i = 1; i < snap.to_parent.size(); ++i) {
    EXPECT_LT(snap.to_parent[i - 1], snap.to_parent[i]);
  }
}

class SnapshotPropertyTest : public ::testing::TestWithParam<Year> {};

TEST_P(SnapshotPropertyTest, EdgesMatchParentExactly) {
  CitationGraph g = MakeRandomGraph(300, 4.0, 1990, 12, 77);
  Snapshot snap = ExtractSnapshot(g, GetParam());
  // Every snapshot edge exists in the parent.
  for (NodeId su = 0; su < snap.graph.num_nodes(); ++su) {
    for (NodeId sv : snap.graph.References(su)) {
      EXPECT_TRUE(g.HasEdge(snap.to_parent[su], snap.to_parent[sv]));
    }
  }
  // Every parent edge among kept nodes exists in the snapshot.
  size_t expected_edges = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.year(u) > GetParam()) continue;
    for (NodeId v : g.References(u)) {
      if (g.year(v) <= GetParam()) ++expected_edges;
    }
  }
  EXPECT_EQ(snap.graph.num_edges(), expected_edges);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SnapshotPropertyTest,
                         ::testing::Values(1989, 1991, 1995, 1999, 2001,
                                           2005));

TEST(SampleEdgesTest, FractionOneKeepsEverything) {
  CitationGraph g = MakeRandomGraph(200, 4.0, 1990, 10, 3);
  CitationGraph sampled = SampleEdges(g, 1.0, 42);
  EXPECT_EQ(sampled, g);
}

TEST(SampleEdgesTest, FractionZeroDropsEverything) {
  CitationGraph g = MakeRandomGraph(200, 4.0, 1990, 10, 3);
  CitationGraph sampled = SampleEdges(g, 0.0, 42);
  EXPECT_EQ(sampled.num_edges(), 0u);
  EXPECT_EQ(sampled.num_nodes(), g.num_nodes());
}

TEST(SampleEdgesTest, HalfKeepsRoughlyHalf) {
  CitationGraph g = MakeRandomGraph(2000, 6.0, 1990, 10, 3);
  CitationGraph sampled = SampleEdges(g, 0.5, 42);
  double ratio = static_cast<double>(sampled.num_edges()) /
                 static_cast<double>(g.num_edges());
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(SampleEdgesTest, DeterministicInSeed) {
  CitationGraph g = MakeRandomGraph(500, 4.0, 1990, 10, 3);
  EXPECT_EQ(SampleEdges(g, 0.3, 9), SampleEdges(g, 0.3, 9));
  EXPECT_FALSE(SampleEdges(g, 0.3, 9) == SampleEdges(g, 0.3, 10));
}

TEST(SampleEdgesTest, SampledEdgesAreSubset) {
  CitationGraph g = MakeRandomGraph(300, 5.0, 1990, 10, 3);
  CitationGraph sampled = SampleEdges(g, 0.4, 11);
  for (NodeId u = 0; u < sampled.num_nodes(); ++u) {
    for (NodeId v : sampled.References(u)) {
      EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
}

}  // namespace
}  // namespace scholar
