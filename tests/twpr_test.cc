#include "rank/time_weighted_pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"
#include "util/thread_pool.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(TwprTest, EdgeWeightsDecayWithGap) {
  CitationGraph g = MakeTinyGraph();
  std::vector<double> w =
      TimeWeightedPageRank::ComputeEdgeWeights(g, /*sigma=*/0.5);
  ASSERT_EQ(w.size(), g.num_edges());
  // Node 3 (2003) cites 0 (2000, gap 3) and 2 (2002, gap 1); CSR row of 3
  // is sorted by target id, so w = [exp(-1.5), exp(-0.5)].
  const EdgeId row3 = g.out_offsets()[3];
  EXPECT_NEAR(w[row3], std::exp(-1.5), 1e-12);
  EXPECT_NEAR(w[row3 + 1], std::exp(-0.5), 1e-12);
}

TEST(TwprTest, BackwardTimeEdgesGetWeightOne) {
  // 0 (2005) cites 1 (2010): time-travel citation clamps to gap 0.
  CitationGraph g = MakeGraph({2005, 2010}, {{0, 1}});
  std::vector<double> w = TimeWeightedPageRank::ComputeEdgeWeights(g, 0.7);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(TwprTest, SigmaZeroEqualsClassicPageRank) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 3);
  TwprOptions o;
  o.sigma = 0.0;
  RankResult twpr = TimeWeightedPageRank(o).Rank(g).value();
  RankResult pr = PageRankRanker().Rank(g).value();
  ASSERT_EQ(twpr.scores.size(), pr.scores.size());
  for (size_t i = 0; i < pr.scores.size(); ++i) {
    EXPECT_NEAR(twpr.scores[i], pr.scores[i], 1e-12);
  }
}

TEST(TwprTest, ScoresFormDistribution) {
  RankResult r = TimeWeightedPageRank().Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(TwprTest, RecentReferenceReceivesMoreThanOldOne) {
  // u (2010) cites a (1990) and b (2009); a and b are otherwise identical.
  CitationGraph g = MakeGraph({1990, 2009, 2010}, {{2, 0}, {2, 1}});
  TwprOptions o;
  o.sigma = 0.4;
  RankResult r = TimeWeightedPageRank(o).Rank(g).value();
  EXPECT_GT(r.scores[1], r.scores[0]);

  // Classic PageRank treats them identically.
  RankResult pr = PageRankRanker().Rank(g).value();
  EXPECT_NEAR(pr.scores[0], pr.scores[1], 1e-12);
}

TEST(TwprTest, LargerSigmaSharpensTheContrast) {
  CitationGraph g = MakeGraph({1990, 2009, 2010}, {{2, 0}, {2, 1}});
  TwprOptions weak;
  weak.sigma = 0.1;
  TwprOptions strong;
  strong.sigma = 1.0;
  RankResult rw = TimeWeightedPageRank(weak).Rank(g).value();
  RankResult rs = TimeWeightedPageRank(strong).Rank(g).value();
  const double contrast_weak = rw.scores[1] / rw.scores[0];
  const double contrast_strong = rs.scores[1] / rs.scores[0];
  EXPECT_GT(contrast_strong, contrast_weak);
}

TEST(TwprTest, RecencyJumpFavorsYoungArticles) {
  // No edges: stationary distribution equals the jump vector.
  CitationGraph g = MakeGraph({2000, 2005, 2010}, {});
  TwprOptions o;
  o.recency_jump = true;
  o.rho = 0.3;
  RankResult r = TimeWeightedPageRank(o).Rank(g).value();
  EXPECT_GT(r.scores[2], r.scores[1]);
  EXPECT_GT(r.scores[1], r.scores[0]);
}

TEST(TwprTest, ComputeRecencyJumpNormalized) {
  CitationGraph g = MakeTinyGraph();
  std::vector<double> jump =
      TimeWeightedPageRank::ComputeRecencyJump(g, 0.2, 2004);
  double sum = std::accumulate(jump.begin(), jump.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(jump[4], jump[0]);
}

TEST(TwprTest, RhoZeroRecencyJumpIsUniform) {
  CitationGraph g = MakeTinyGraph();
  std::vector<double> jump =
      TimeWeightedPageRank::ComputeRecencyJump(g, 0.0, 2004);
  for (double j : jump) EXPECT_NEAR(j, 0.2, 1e-12);
}

TEST(TwprTest, RejectsNegativeSigma) {
  TwprOptions o;
  o.sigma = -0.5;
  EXPECT_TRUE(TimeWeightedPageRank(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(TwprTest, RejectsNegativeRhoWhenJumpEnabled) {
  TwprOptions o;
  o.recency_jump = true;
  o.rho = -0.1;
  EXPECT_TRUE(TimeWeightedPageRank(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(TwprTest, EmptyGraph) {
  RankResult r = TimeWeightedPageRank().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

class TwprPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(TwprPropertyTest, DistributionAndConvergence) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 11);
  TwprOptions o;
  o.sigma = GetParam();
  RankResult r = TimeWeightedPageRank(o).Rank(g).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-8);
  EXPECT_TRUE(r.converged);
  for (double s : r.scores) EXPECT_GT(s, 0.0);
}

TEST_P(TwprPropertyTest, ReducesRecencyBiasVsPageRank) {
  // Mean score of the newest third should be closer to the oldest third's
  // under TWPR's recency jump than under classic PageRank.
  CitationGraph g = MakeRandomGraph(600, 5, 1985, 21, 13);
  TwprOptions o;
  o.sigma = GetParam();
  o.recency_jump = true;
  o.rho = 0.1;
  RankResult twpr = TimeWeightedPageRank(o).Rank(g).value();
  RankResult pr = PageRankRanker().Rank(g).value();
  auto third_means = [&](const std::vector<double>& s) {
    double young = 0, old = 0;
    size_t n = s.size();
    for (size_t i = 0; i < n / 3; ++i) old += s[i];
    for (size_t i = n - n / 3; i < n; ++i) young += s[i];
    return std::pair<double, double>(old / (n / 3), young / (n / 3));
  };
  auto [pr_old, pr_young] = third_means(pr.scores);
  auto [tw_old, tw_young] = third_means(twpr.scores);
  EXPECT_GT(tw_young / tw_old, pr_young / pr_old);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, TwprPropertyTest,
                         ::testing::Values(0.1, 0.4, 0.8));

TEST(TwprParallelTest, WeightPipelineBitIdenticalWithPool) {
  CitationGraph g = MakeRandomGraph(5000, 5, 1980, 30, 23);
  ThreadPool pool(4);
  std::vector<double> w_serial =
      TimeWeightedPageRank::ComputeEdgeWeights(g, 0.4);
  std::vector<double> w_pool =
      TimeWeightedPageRank::ComputeEdgeWeights(g, 0.4, &pool);
  EXPECT_EQ(w_serial, w_pool);
  std::vector<double> j_serial =
      TimeWeightedPageRank::ComputeRecencyJump(g, 0.2, 2010);
  std::vector<double> j_pool =
      TimeWeightedPageRank::ComputeRecencyJump(g, 0.2, 2010, &pool);
  EXPECT_EQ(j_serial, j_pool);
}

TEST(TwprParallelTest, ScoresBitIdenticalAcrossThreadCounts) {
  CitationGraph g = MakeRandomGraph(2000, 6, 1980, 25, 29);
  TwprOptions o;
  o.sigma = 0.4;
  o.recency_jump = true;
  o.rho = 0.15;
  o.power.threads = 1;
  RankResult serial = TimeWeightedPageRank(o).Rank(g).value();
  for (int threads : {2, 8}) {
    o.power.threads = threads;
    RankResult parallel = TimeWeightedPageRank(o).Rank(g).value();
    EXPECT_EQ(serial.scores, parallel.scores) << threads << " threads";
    EXPECT_EQ(serial.iterations, parallel.iterations);
  }
}

}  // namespace
}  // namespace scholar
