#include "rank/author_rank.h"

#include <gtest/gtest.h>

namespace scholar {
namespace {

// 4 papers: p0 by a0; p1 by a0,a1; p2 by a1; p3 by a2.
PaperAuthors Map() { return PaperAuthors::FromLists({{0}, {0, 1}, {1}, {2}}); }

TEST(AuthorRankTest, SumAggregation) {
  std::vector<double> article = {1.0, 2.0, 3.0, 4.0};
  auto scores = RankAuthors(Map(), article, AuthorAggregation::kSum).value();
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 3.0);  // p0 + p1
  EXPECT_DOUBLE_EQ(scores[1], 5.0);  // p1 + p2
  EXPECT_DOUBLE_EQ(scores[2], 4.0);  // p3
}

TEST(AuthorRankTest, MeanAggregation) {
  std::vector<double> article = {1.0, 2.0, 3.0, 4.0};
  auto scores = RankAuthors(Map(), article, AuthorAggregation::kMean).value();
  EXPECT_DOUBLE_EQ(scores[0], 1.5);
  EXPECT_DOUBLE_EQ(scores[1], 2.5);
  EXPECT_DOUBLE_EQ(scores[2], 4.0);
}

TEST(AuthorRankTest, FractionalSumSplitsCoauthoredWork) {
  std::vector<double> article = {1.0, 2.0, 3.0, 4.0};
  auto scores =
      RankAuthors(Map(), article, AuthorAggregation::kFractionalSum).value();
  EXPECT_DOUBLE_EQ(scores[0], 1.0 + 1.0);  // p0 full + half of p1
  EXPECT_DOUBLE_EQ(scores[1], 1.0 + 3.0);  // half of p1 + p2
  EXPECT_DOUBLE_EQ(scores[2], 4.0);
  // Fractional sums conserve total score mass.
  EXPECT_DOUBLE_EQ(scores[0] + scores[1] + scores[2], 10.0);
}

TEST(AuthorRankTest, HLikeCountsStrongPapers) {
  // Author 1's best paper tops the corpus (percentile 1.0 >= 0.999), so h
  // reaches 1; author 2's only paper is mid-pack, so h stays 0.
  std::vector<double> article = {0.1, 0.9, 0.95, 0.2};
  auto scores =
      RankAuthors(Map(), article, AuthorAggregation::kHLike).value();
  EXPECT_GE(scores[1], 1.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
  EXPECT_GT(scores[1], scores[0]);
}

TEST(AuthorRankTest, SizeMismatchRejected) {
  std::vector<double> article = {1.0};  // map has 4 papers
  EXPECT_TRUE(RankAuthors(Map(), article, AuthorAggregation::kSum)
                  .status()
                  .IsInvalidArgument());
}

TEST(AuthorRankTest, EmptyMap) {
  PaperAuthors empty;
  auto scores =
      RankAuthors(empty, {}, AuthorAggregation::kFractionalSum).value();
  EXPECT_TRUE(scores.empty());
}

TEST(AuthorRankTest, AuthorWithoutPapersScoresZero) {
  // Author id 5 exists (sparse ids) but has no papers.
  PaperAuthors pa = PaperAuthors::FromLists({{5}});
  auto scores =
      RankAuthors(pa, {2.0}, AuthorAggregation::kSum).value();
  ASSERT_EQ(scores.size(), 6u);
  EXPECT_DOUBLE_EQ(scores[5], 2.0);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

}  // namespace
}  // namespace scholar
