/// Warm-start and incremental re-ranking: seeding iterations from earlier
/// results must not change fixed points, and must reduce iteration counts —
/// the refresh path for corpora that grow month by month.
#include <memory>

#include <gtest/gtest.h>

#include "ensemble/ensemble_ranker.h"
#include "graph/time_slicer.h"
#include "rank/pagerank.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(ExtendScoresTest, PadsWithMeanAndNormalizes) {
  std::vector<double> old_scores = {0.2, 0.6};  // mean 0.4
  std::vector<double> extended = ExtendScoresForGrownGraph(old_scores, 4);
  ASSERT_EQ(extended.size(), 4u);
  // Raw: {0.2, 0.6, 0.4, 0.4}, total 1.6 -> normalized.
  EXPECT_DOUBLE_EQ(extended[0], 0.2 / 1.6);
  EXPECT_DOUBLE_EQ(extended[1], 0.6 / 1.6);
  EXPECT_DOUBLE_EQ(extended[2], 0.4 / 1.6);
  double sum = 0.0;
  for (double s : extended) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ExtendScoresTest, EmptyOldScoresGiveUniform) {
  std::vector<double> extended = ExtendScoresForGrownGraph({}, 4);
  for (double s : extended) EXPECT_DOUBLE_EQ(s, 0.25);
}

TEST(ExtendScoresTest, ZeroTarget) {
  EXPECT_TRUE(ExtendScoresForGrownGraph({1.0}, 0).empty());
}

TEST(WarmStartTest, SameFixedPointAsColdStart) {
  CitationGraph g = MakeRandomGraph(400, 5, 1985, 20, 3);
  PowerIterationOptions o;
  o.tolerance = 1e-12;
  RankResult cold = WeightedPowerIteration(g, {}, {}, o).value();
  // Seed with an arbitrary (valid) distribution.
  std::vector<double> seed(g.num_nodes());
  Rng rng(7);
  for (double& s : seed) s = rng.NextDouble(0.1, 1.0);
  RankResult warm = WeightedPowerIteration(g, {}, {}, o, seed).value();
  for (size_t i = 0; i < cold.scores.size(); ++i) {
    EXPECT_NEAR(cold.scores[i], warm.scores[i], 1e-9);
  }
}

TEST(WarmStartTest, SeedingWithAnswerConvergesImmediately) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 5);
  PowerIterationOptions o;
  RankResult cold = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult warm =
      WeightedPowerIteration(g, {}, {}, o, cold.scores).value();
  EXPECT_LE(warm.iterations, 3);
  EXPECT_GT(cold.iterations, warm.iterations);
}

TEST(WarmStartTest, InvalidSeedRejected) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  EXPECT_TRUE(WeightedPowerIteration(g, {}, {}, o, {1.0, 2.0})
                  .status()
                  .IsInvalidArgument());
}

TEST(WarmStartTest, NegativeSeedFallsBackToUniform) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  std::vector<double> bad_seed = {-1.0, 1.0, 1.0, 1.0, 1.0};
  RankResult cold = WeightedPowerIteration(g, {}, {}, o).value();
  RankResult fallback =
      WeightedPowerIteration(g, {}, {}, o, bad_seed).value();
  EXPECT_EQ(cold.scores, fallback.scores);
  EXPECT_EQ(cold.iterations, fallback.iterations);
}

TEST(IncrementalRankTest, GrownGraphRefreshesFaster) {
  // Yesterday's corpus...
  CitationGraph full = MakeRandomGraph(2000, 6, 1985, 25, 11);
  Snapshot yesterday = ExtractSnapshot(full, 2005);
  PageRankRanker ranker;
  RankResult old_result = ranker.Rank(yesterday.graph).value();

  // ...grows to today's. Snapshot node ids are a prefix of the full
  // graph's (ids are monotone in year), so old scores extend directly.
  std::vector<double> seed =
      ExtendScoresForGrownGraph(old_result.scores, full.num_nodes());
  RankContext warm_ctx;
  warm_ctx.graph = &full;
  warm_ctx.initial_scores = &seed;
  RankResult warm = ranker.Rank(warm_ctx).value();
  RankResult cold = ranker.Rank(full).value();

  EXPECT_LT(warm.iterations, cold.iterations);
  for (size_t i = 0; i < cold.scores.size(); ++i) {
    EXPECT_NEAR(cold.scores[i], warm.scores[i], 1e-8);
  }
}

TEST(EnsembleWarmStartTest, SameScoresFewerIterations) {
  CitationGraph g = MakeRandomGraph(1500, 5, 1985, 20, 13);
  EnsembleOptions warm_o;
  warm_o.warm_start = true;
  EnsembleOptions cold_o;
  cold_o.warm_start = false;
  auto base = std::make_shared<TimeWeightedPageRank>();
  RankResult warm = EnsembleRanker(base, warm_o).Rank(g).value();
  RankResult cold = EnsembleRanker(base, cold_o).Rank(g).value();
  EXPECT_LT(warm.iterations, cold.iterations);
  ASSERT_EQ(warm.scores.size(), cold.scores.size());
  for (size_t i = 0; i < warm.scores.size(); ++i) {
    EXPECT_NEAR(warm.scores[i], cold.scores[i], 1e-6);
  }
}

}  // namespace
}  // namespace scholar
