// Property tests for the ensemble's zero-copy temporal-view path: it must
// be bitwise indistinguishable from the legacy materialized-snapshot path
// (options.materialize_snapshots — the oracle) on every graph, slice
// count, thread count, warm-start mode, and view-capable base ranker.

#include "ensemble/ensemble_ranker.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "core/registry.h"
#include "rank/hits.h"
#include "rank/katz.h"
#include "rank/pagerank.h"
#include "rank/sceas.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"
#include "util/config.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeShuffledYearGraph;

/// Runs one EnsembleOptions config in both modes and requires bitwise
/// equality of scores and per-snapshot details.
void ExpectViewMatchesMaterialized(std::shared_ptr<const Ranker> base,
                                   const CitationGraph& g,
                                   EnsembleOptions options,
                                   const std::string& label) {
  RankContext ctx;
  ctx.graph = &g;

  options.materialize_snapshots = false;
  EnsembleRanker view_ens(base, options);
  std::vector<EnsembleRanker::SnapshotDetail> view_details;
  Result<RankResult> view_result = view_ens.RankWithDetails(ctx, &view_details);
  ASSERT_TRUE(view_result.ok()) << label << ": "
                                << view_result.status().ToString();

  options.materialize_snapshots = true;
  EnsembleRanker mat_ens(base, options);
  std::vector<EnsembleRanker::SnapshotDetail> mat_details;
  Result<RankResult> mat_result = mat_ens.RankWithDetails(ctx, &mat_details);
  ASSERT_TRUE(mat_result.ok()) << label << ": "
                               << mat_result.status().ToString();

  EXPECT_EQ(view_result.value().iterations, mat_result.value().iterations)
      << label;
  // Bitwise, not approximate: both modes must execute identical arithmetic.
  EXPECT_TRUE(view_result.value().scores == mat_result.value().scores)
      << label;

  ASSERT_EQ(view_details.size(), mat_details.size()) << label;
  for (size_t i = 0; i < view_details.size(); ++i) {
    EXPECT_EQ(view_details[i].boundary_year, mat_details[i].boundary_year);
    EXPECT_EQ(view_details[i].num_nodes, mat_details[i].num_nodes);
    EXPECT_EQ(view_details[i].num_edges, mat_details[i].num_edges);
    EXPECT_EQ(view_details[i].iterations, mat_details[i].iterations);
  }
}

std::shared_ptr<const Ranker> TwprBase() {
  TwprOptions o;
  o.recency_jump = true;
  return std::make_shared<TimeWeightedPageRank>(o);
}

TEST(EnsembleViewTest, MatchesMaterializedAcrossGraphsSlicesAndThreads) {
  for (uint64_t seed : {1u, 2u}) {
    CitationGraph g = MakeShuffledYearGraph(250, 3.0, 2000, 12, seed);
    for (int num_slices : {1, 3, 5}) {
      for (int threads : {1, 2, 4, 8}) {
        for (bool warm : {false, true}) {
          EnsembleOptions o;
          o.num_slices = num_slices;
          o.threads = threads;
          o.warm_start = warm;
          ExpectViewMatchesMaterialized(
              TwprBase(), g, o,
              "seed=" + std::to_string(seed) +
                  " slices=" + std::to_string(num_slices) +
                  " threads=" + std::to_string(threads) +
                  " warm=" + std::to_string(warm));
        }
      }
    }
  }
}

TEST(EnsembleViewTest, MatchesMaterializedOnYearMonotoneGraphs) {
  // Identity fast path: node ids already year-sorted.
  CitationGraph g = MakeRandomGraph(300, 3.0, 1995, 10, 3);
  for (bool warm : {false, true}) {
    EnsembleOptions o;
    o.warm_start = warm;
    o.threads = 4;
    ExpectViewMatchesMaterialized(TwprBase(), g, o,
                                  "identity warm=" + std::to_string(warm));
  }
}

TEST(EnsembleViewTest, MatchesMaterializedForEveryViewCapableBase) {
  CitationGraph g = MakeShuffledYearGraph(220, 3.0, 2001, 9, 4);
  std::vector<std::shared_ptr<const Ranker>> bases = {
      std::make_shared<PageRankRanker>(),
      TwprBase(),
      std::make_shared<HitsRanker>(),
      std::make_shared<KatzRanker>(),
      std::make_shared<SceasRanker>(),
  };
  for (const auto& base : bases) {
    for (bool warm : {false, true}) {
      EnsembleOptions o;
      o.num_slices = 4;
      o.threads = 4;
      o.warm_start = warm;
      ExpectViewMatchesMaterialized(
          base, g, o, base->name() + " warm=" + std::to_string(warm));
    }
  }
}

TEST(EnsembleViewTest, MatchesMaterializedAcrossScopesCombinersAndWindow) {
  CitationGraph g = MakeShuffledYearGraph(220, 3.0, 2000, 10, 5);
  for (NormalizationScope scope :
       {NormalizationScope::kSnapshot, NormalizationScope::kSliceCohort,
        NormalizationScope::kYearCohort}) {
    for (EnsembleCombiner combiner :
         {EnsembleCombiner::kMean, EnsembleCombiner::kRecencyWeighted}) {
      for (int window : {0, 2}) {
        EnsembleOptions o;
        o.num_slices = 5;
        o.scope = scope;
        o.combiner = combiner;
        o.window = window;
        o.threads = 2;
        ExpectViewMatchesMaterialized(
            TwprBase(), g, o,
            "scope=" + NormalizationScopeToString(scope) +
                " combiner=" + EnsembleCombinerToString(combiner) +
                " window=" + std::to_string(window));
      }
    }
  }
}

TEST(EnsembleViewTest, ViewPathIsThreadCountInvariant) {
  CitationGraph g = MakeShuffledYearGraph(250, 3.0, 2000, 10, 6);
  RankContext ctx;
  ctx.graph = &g;
  std::vector<double> serial_scores;
  for (bool warm : {false, true}) {
    for (int threads : {1, 2, 4, 8}) {
      EnsembleOptions o;
      o.warm_start = warm;
      o.threads = threads;
      EnsembleRanker ens(TwprBase(), o);
      Result<RankResult> result = ens.Rank(ctx);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (threads == 1) {
        serial_scores = std::move(result.value().scores);
      } else {
        EXPECT_TRUE(result.value().scores == serial_scores)
            << "warm=" << warm << " threads=" << threads;
      }
    }
  }
}

TEST(EnsembleViewTest, NonViewBaseStillWorksViaLegacyFallback) {
  // cc has no view support, so the ensemble silently takes the legacy
  // materialized path; the result must simply be well-formed.
  CitationGraph g = MakeShuffledYearGraph(150, 2.0, 2000, 8, 7);
  Result<std::shared_ptr<const Ranker>> ens = MakeRanker("ens_cc");
  ASSERT_TRUE(ens.ok());
  RankContext ctx;
  ctx.graph = &g;
  Result<RankResult> result = ens.value()->Rank(ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().scores.size(), g.num_nodes());
}

TEST(EnsembleViewTest, RegistryParsesMaterializeSnapshotsKnob) {
  Config config;
  config.SetBool("materialize_snapshots", true);
  Result<std::shared_ptr<const Ranker>> r = MakeRanker("ens_twpr", config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto* ens = dynamic_cast<const EnsembleRanker*>(r.value().get());
  ASSERT_NE(ens, nullptr);
  EXPECT_TRUE(ens->options().materialize_snapshots);

  Result<std::shared_ptr<const Ranker>> def = MakeRanker("ens_twpr");
  ASSERT_TRUE(def.ok());
  const auto* def_ens =
      dynamic_cast<const EnsembleRanker*>(def.value().get());
  ASSERT_NE(def_ens, nullptr);
  EXPECT_FALSE(def_ens->options().materialize_snapshots);
}

}  // namespace
}  // namespace scholar
