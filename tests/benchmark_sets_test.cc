#include "eval/benchmark_sets.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "rank/citation_count.h"
#include "rank/pagerank.h"

namespace scholar {
namespace {

Corpus TestCorpus() {
  SyntheticOptions o;
  o.num_articles = 2500;
  o.num_years = 12;
  o.seed = 21;
  return GenerateSyntheticCorpus(o, "suite").value();
}

EvalSuiteOptions SmallSuiteOptions() {
  EvalSuiteOptions o;
  o.num_pairs = 3000;
  return o;
}

TEST(EvalSuiteTest, BuildsAllComponents) {
  Corpus corpus = TestCorpus();
  EvalSuite suite = BuildEvalSuite(corpus, SmallSuiteOptions()).value();
  EXPECT_EQ(suite.overall_pairs.size(), 3000u);
  EXPECT_FALSE(suite.recent_pairs.empty());
  EXPECT_FALSE(suite.same_year_pairs.empty());
  EXPECT_FALSE(suite.awards.awards.empty());
  EXPECT_EQ(suite.recent_cutoff, corpus.graph.max_year() - 4);
}

TEST(EvalSuiteTest, RequiresGroundTruth) {
  Corpus corpus = TestCorpus();
  corpus.true_impact.clear();
  EXPECT_EQ(BuildEvalSuite(corpus, SmallSuiteOptions()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EvaluateScoresTest, OracleScoresAreNearPerfect) {
  Corpus corpus = TestCorpus();
  EvalSuite suite = BuildEvalSuite(corpus, SmallSuiteOptions()).value();
  // The latent impact itself must score ~1.0 accuracy by construction.
  RankerEvaluation eval =
      EvaluateScores(corpus, "oracle", corpus.true_impact, suite).value();
  EXPECT_DOUBLE_EQ(eval.overall_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(eval.recent_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(eval.same_year_accuracy, 1.0);
  EXPECT_NEAR(eval.spearman_truth, 1.0, 1e-9);
  EXPECT_GT(eval.map_awards, 0.5);
}

TEST(EvaluateScoresTest, InvertedOracleIsNearZero) {
  Corpus corpus = TestCorpus();
  EvalSuite suite = BuildEvalSuite(corpus, SmallSuiteOptions()).value();
  std::vector<double> inverted(corpus.true_impact.size());
  for (size_t i = 0; i < inverted.size(); ++i) {
    inverted[i] = -corpus.true_impact[i];
  }
  RankerEvaluation eval =
      EvaluateScores(corpus, "inv", inverted, suite).value();
  EXPECT_DOUBLE_EQ(eval.overall_accuracy, 0.0);
  EXPECT_NEAR(eval.spearman_truth, -1.0, 1e-9);
}

TEST(EvaluateRankerTest, RunsRealRankers) {
  Corpus corpus = TestCorpus();
  EvalSuite suite = BuildEvalSuite(corpus, SmallSuiteOptions()).value();
  RankerEvaluation cc =
      EvaluateRanker(corpus, CitationCountRanker(), suite).value();
  RankerEvaluation pr =
      EvaluateRanker(corpus, PageRankRanker(), suite).value();
  EXPECT_EQ(cc.ranker, "cc");
  EXPECT_EQ(pr.ranker, "pagerank");
  // A structural ranker beats coin flipping on fitness-driven data.
  EXPECT_GT(cc.overall_accuracy, 0.55);
  EXPECT_GT(pr.overall_accuracy, 0.55);
  EXPECT_GT(pr.iterations, 0);
  EXPECT_GE(pr.seconds, 0.0);
  EXPECT_GE(pr.ndcg_awards_100, 0.0);
  EXPECT_LE(pr.ndcg_awards_100, 1.0);
}

TEST(EvaluateScoresTest, AllMetricsWithinBounds) {
  Corpus corpus = TestCorpus();
  EvalSuite suite = BuildEvalSuite(corpus, SmallSuiteOptions()).value();
  RankerEvaluation eval =
      EvaluateRanker(corpus, CitationCountRanker(), suite).value();
  for (double m : {eval.overall_accuracy, eval.recent_accuracy,
                   eval.same_year_accuracy, eval.ndcg_awards_100,
                   eval.map_awards}) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
  EXPECT_GE(eval.spearman_truth, -1.0);
  EXPECT_LE(eval.spearman_truth, 1.0);
}

}  // namespace
}  // namespace scholar
