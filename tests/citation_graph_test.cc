#include "graph/citation_graph.h"

#include <algorithm>
#include <set>
#include <utility>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(CitationGraphTest, TinyGraphShape) {
  CitationGraph g = MakeTinyGraph();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.min_year(), 2000);
  EXPECT_EQ(g.max_year(), 2004);
}

TEST(CitationGraphTest, ReferencesAndCiters) {
  CitationGraph g = MakeTinyGraph();
  auto refs3 = g.References(3);
  ASSERT_EQ(refs3.size(), 2u);
  EXPECT_EQ(refs3[0], 0u);
  EXPECT_EQ(refs3[1], 2u);

  auto citers2 = g.Citers(2);
  ASSERT_EQ(citers2.size(), 2u);
  EXPECT_EQ(citers2[0], 3u);
  EXPECT_EQ(citers2[1], 4u);

  EXPECT_TRUE(g.References(0).empty());
  EXPECT_TRUE(g.Citers(4).empty());
}

TEST(CitationGraphTest, DegreesAndDangling) {
  CitationGraph g = MakeTinyGraph();
  EXPECT_EQ(g.InDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_TRUE(g.IsDangling(0));
  EXPECT_TRUE(g.IsDangling(1));
  EXPECT_FALSE(g.IsDangling(2));
  EXPECT_EQ(g.CountDangling(), 2u);
}

TEST(CitationGraphTest, HasEdge) {
  CitationGraph g = MakeTinyGraph();
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_TRUE(g.HasEdge(4, 3));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

TEST(CitationGraphTest, EmptyGraph) {
  CitationGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.CountDangling(), 0u);
}

TEST(CitationGraphTest, EqualityComparesStructure) {
  CitationGraph a = MakeTinyGraph();
  CitationGraph b = MakeTinyGraph();
  EXPECT_EQ(a, b);
  CitationGraph c = testing_util::MakeGraph({2000, 2001}, {{1, 0}});
  EXPECT_FALSE(a == c);
}

TEST(CitationGraphTest, FromCsrSingleNode) {
  CitationGraph g = CitationGraph::FromCsr({1999}, {0, 0}, {});
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.min_year(), 1999);
  EXPECT_EQ(g.max_year(), 1999);
  EXPECT_TRUE(g.IsDangling(0));
}

/// Property suite over random graphs: the reverse adjacency must be the
/// exact transpose of the forward adjacency.
class CitationGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  CitationGraph graph_ = MakeRandomGraph(300, 4.0, 1990, 15, GetParam());
};

TEST_P(CitationGraphPropertyTest, DegreeSumsMatchEdgeCount) {
  size_t out_sum = 0, in_sum = 0;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    out_sum += graph_.OutDegree(u);
    in_sum += graph_.InDegree(u);
  }
  EXPECT_EQ(out_sum, graph_.num_edges());
  EXPECT_EQ(in_sum, graph_.num_edges());
}

TEST_P(CitationGraphPropertyTest, CitersIsTransposeOfReferences) {
  std::set<std::pair<NodeId, NodeId>> forward, backward;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (NodeId v : graph_.References(u)) forward.emplace(u, v);
    for (NodeId w : graph_.Citers(u)) backward.emplace(w, u);
  }
  EXPECT_EQ(forward, backward);
}

TEST_P(CitationGraphPropertyTest, AdjacencySorted) {
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    auto refs = graph_.References(u);
    EXPECT_TRUE(std::is_sorted(refs.begin(), refs.end()));
    auto citers = graph_.Citers(u);
    EXPECT_TRUE(std::is_sorted(citers.begin(), citers.end()));
  }
}

TEST_P(CitationGraphPropertyTest, HasEdgeAgreesWithReferences) {
  for (NodeId u = 0; u < graph_.num_nodes(); u += 17) {
    for (NodeId v = 0; v < graph_.num_nodes(); v += 13) {
      auto refs = graph_.References(u);
      bool expected = std::find(refs.begin(), refs.end(), v) != refs.end();
      EXPECT_EQ(graph_.HasEdge(u, v), expected) << u << "->" << v;
    }
  }
}

TEST_P(CitationGraphPropertyTest, YearRangeIsTight) {
  Year mn = graph_.year(0), mx = graph_.year(0);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    mn = std::min(mn, graph_.year(u));
    mx = std::max(mx, graph_.year(u));
  }
  EXPECT_EQ(graph_.min_year(), mn);
  EXPECT_EQ(graph_.max_year(), mx);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CitationGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace scholar
