#include "rank/citerank.h"

#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(CiteRankTest, ScoresFormDistribution) {
  RankResult r = CiteRankRanker().Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(std::accumulate(r.scores.begin(), r.scores.end(), 0.0), 1.0,
              1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(CiteRankTest, FavorsRecentArticlesOnEdgelessGraph) {
  CitationGraph g = MakeGraph({1990, 2000, 2010}, {});
  CiteRankOptions o;
  o.tau = 3.0;
  RankResult r = CiteRankRanker(o).Rank(g).value();
  EXPECT_GT(r.scores[2], r.scores[1]);
  EXPECT_GT(r.scores[1], r.scores[0]);
}

TEST(CiteRankTest, HugeTauApproachesPageRank) {
  CitationGraph g = MakeRandomGraph(200, 4, 1990, 10, 5);
  CiteRankOptions o;
  o.tau = 1e9;
  RankResult cr = CiteRankRanker(o).Rank(g).value();
  RankResult pr = PageRankRanker().Rank(g).value();
  for (size_t i = 0; i < pr.scores.size(); ++i) {
    EXPECT_NEAR(cr.scores[i], pr.scores[i], 1e-6);
  }
}

TEST(CiteRankTest, SmallTauConcentratesOnNewestYear) {
  CitationGraph g = MakeGraph({1990, 1990, 2010}, {});
  CiteRankOptions o;
  o.tau = 0.1;
  RankResult r = CiteRankRanker(o).Rank(g).value();
  EXPECT_GT(r.scores[2], 0.99);
}

TEST(CiteRankTest, AnOldPaperCitedByRecentOnesStaysRelevant) {
  // Classic CiteRank motivation: traffic enters at recent papers and flows
  // backwards, so an old paper cited by fresh work beats an equally cited
  // old paper whose citers are old.
  GraphBuilder builder;
  NodeId old_a = builder.AddNode(1990);  // cited by recent work
  NodeId old_b = builder.AddNode(1990);  // cited by old work
  NodeId old_citer1 = builder.AddNode(1992);
  NodeId old_citer2 = builder.AddNode(1993);
  NodeId new_citer1 = builder.AddNode(2009);
  NodeId new_citer2 = builder.AddNode(2010);
  SCHOLAR_CHECK_OK(builder.AddEdge(new_citer1, old_a));
  SCHOLAR_CHECK_OK(builder.AddEdge(new_citer2, old_a));
  SCHOLAR_CHECK_OK(builder.AddEdge(old_citer1, old_b));
  SCHOLAR_CHECK_OK(builder.AddEdge(old_citer2, old_b));
  CitationGraph g = std::move(builder).Build().value();
  CiteRankOptions o;
  o.tau = 2.6;
  RankResult r = CiteRankRanker(o).Rank(g).value();
  EXPECT_GT(r.scores[old_a], r.scores[old_b]);
}

TEST(CiteRankTest, RejectsNonPositiveTau) {
  CiteRankOptions o;
  o.tau = 0.0;
  EXPECT_TRUE(CiteRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
  o.tau = -2.0;
  EXPECT_TRUE(CiteRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(CiteRankTest, EmptyGraph) {
  RankResult r = CiteRankRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(CiteRankTest, NowYearOverrideShiftsRecency) {
  CitationGraph g = MakeGraph({2000, 2005}, {});
  CiteRankOptions o;
  o.tau = 2.0;
  CiteRankRanker ranker(o);
  RankContext ctx;
  ctx.graph = &g;
  ctx.now_year = 2005;
  RankResult at_2005 = ranker.Rank(ctx).value();
  ctx.now_year = 2100;  // both articles are ancient now
  RankResult at_2100 = ranker.Rank(ctx).value();
  // At 2005 the newer article dominates strongly; at 2100 both ages are in
  // the flat exponential tail relative to each other... still newer wins,
  // but by less after normalization? The ratio shrinks toward parity only
  // in absolute weight; relative ratio stays exp(5/tau). What must hold:
  // ordering unchanged, scores remain a distribution.
  EXPECT_GT(at_2005.scores[1], at_2005.scores[0]);
  EXPECT_GT(at_2100.scores[1], at_2100.scores[0]);
  EXPECT_NEAR(at_2100.scores[0] + at_2100.scores[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace scholar
