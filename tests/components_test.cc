#include "graph/components.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

TEST(ComponentsTest, EmptyGraph) {
  ComponentStats s = ComputeWeakComponents(CitationGraph());
  EXPECT_EQ(s.num_components, 0u);
  EXPECT_EQ(s.giant_size, 0u);
}

TEST(ComponentsTest, TinyGraphIsOneComponent) {
  ComponentStats s = ComputeWeakComponents(MakeTinyGraph());
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.giant_size, 5u);
  EXPECT_EQ(s.num_isolated, 0u);
}

TEST(ComponentsTest, DisconnectedPieces) {
  // {0,1} linked, {2,3} linked, {4} isolated.
  CitationGraph g = MakeGraph({2000, 2000, 2000, 2000, 2000},
                              {{1, 0}, {3, 2}});
  ComponentStats s = ComputeWeakComponents(g);
  EXPECT_EQ(s.num_components, 3u);
  EXPECT_EQ(s.giant_size, 2u);
  EXPECT_EQ(s.num_isolated, 1u);
  EXPECT_EQ(s.labels[0], s.labels[1]);
  EXPECT_EQ(s.labels[2], s.labels[3]);
  EXPECT_NE(s.labels[0], s.labels[2]);
  EXPECT_NE(s.labels[4], s.labels[0]);
}

TEST(ComponentsTest, DirectionIsIgnored) {
  // 0 -> 1 and 2 -> 1: weakly one component despite no directed path
  // between 0 and 2.
  CitationGraph g = MakeGraph({2000, 2000, 2000}, {{0, 1}, {2, 1}});
  ComponentStats s = ComputeWeakComponents(g);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(ComponentsTest, SizesSumToNodeCount) {
  CitationGraph g = MakeRandomGraph(500, 1.0, 1990, 10, 11);
  ComponentStats s = ComputeWeakComponents(g);
  size_t total = 0;
  for (size_t size : s.sizes) total += size;
  EXPECT_EQ(total, g.num_nodes());
  EXPECT_EQ(s.sizes.size(), s.num_components);
}

TEST(ComponentsTest, LabelsAreConsistentWithEdges) {
  CitationGraph g = MakeRandomGraph(300, 2.0, 1990, 10, 13);
  ComponentStats s = ComputeWeakComponents(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.References(u)) {
      EXPECT_EQ(s.labels[u], s.labels[v]);
    }
  }
}

TEST(ComponentsTest, DenseRandomGraphHasGiantComponent) {
  CitationGraph g = MakeRandomGraph(1000, 5.0, 1990, 10, 17);
  ComponentStats s = ComputeWeakComponents(g);
  EXPECT_GT(s.giant_size, 900u);
}

}  // namespace
}  // namespace scholar
