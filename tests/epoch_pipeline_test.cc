#include "stream/epoch_pipeline.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace scholar {
namespace stream {
namespace {

using testing_util::MakeTinyGraph;

EdgeBatch Batch(uint64_t sequence, std::vector<Year> years,
                std::vector<StreamEdge> edges) {
  EdgeBatch batch;
  batch.sequence = sequence;
  batch.node_years = std::move(years);
  batch.edges = std::move(edges);
  return batch;
}

/// Publisher that records every publication it receives.
struct Capture {
  std::vector<uint64_t> epochs;
  std::vector<size_t> graph_sizes;
  std::vector<size_t> score_sizes;
  Status to_return = Status::OK();

  EpochPublisher AsPublisher() {
    return [this](const CitationGraph& graph, const RankResult& result,
                  const EpochStats& stats) -> Status {
      epochs.push_back(stats.epoch);
      graph_sizes.push_back(graph.num_nodes());
      score_sizes.push_back(result.scores.size());
      return to_return;
    };
  }
};

struct PipelineUnderTest {
  explicit PipelineUnderTest(const std::string& mode = "full") {
    IncrementalRankerOptions options;
    options.ranker = "pagerank";
    options.mode = mode;
    ranker.emplace(IncrementalRanker::Create(options).value());
    graph.emplace(MakeTinyGraph());
    pipeline.emplace(&*graph, &*ranker, capture.AsPublisher());
  }

  Capture capture;
  std::optional<IncrementalRanker> ranker;
  std::optional<StreamingGraph> graph;
  std::optional<EpochPipeline> pipeline;
};

TEST(EpochPipelineTest, BootstrapColdRanksAndPublishesEpochZero) {
  PipelineUnderTest t;
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  ASSERT_EQ(t.capture.epochs.size(), 1u);
  EXPECT_EQ(t.capture.epochs[0], 0u);
  EXPECT_EQ(t.capture.graph_sizes[0], 5u);
  EXPECT_EQ(t.capture.score_sizes[0], 5u);
  ASSERT_EQ(t.pipeline->history().size(), 1u);
  const EpochStats& stats = t.pipeline->history()[0];
  EXPECT_EQ(stats.epoch, 0u);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_TRUE(stats.converged);
}

TEST(EpochPipelineTest, StepAppliesRanksAndPublishes) {
  PipelineUnderTest t;
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  Result<EpochStats> stats =
      t.pipeline->Step(Batch(1, {2005, 2005}, {{5, 0}, {5, 4}, {6, 2}}));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_EQ(stats->batches_applied, 1u);
  EXPECT_EQ(stats->nodes_added, 2u);
  EXPECT_EQ(stats->edges_added, 3u);
  EXPECT_EQ(stats->num_nodes, 7u);
  EXPECT_EQ(stats->num_edges, 9u);
  EXPECT_GT(stats->iterations, 0);
  ASSERT_EQ(t.capture.epochs.size(), 2u);
  EXPECT_EQ(t.capture.graph_sizes[1], 7u);
  EXPECT_EQ(t.capture.score_sizes[1], 7u);
}

TEST(EpochPipelineTest, StagedBatchPublishesNothing) {
  PipelineUnderTest t;
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  // Sequence 2 while 1 is still missing: parked, nothing ranked.
  Result<EpochStats> stats = t.pipeline->Step(Batch(2, {2006}, {{6, 0}}));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 0u);
  EXPECT_EQ(stats->iterations, 0);
  EXPECT_EQ(t.capture.epochs.size(), 1u);  // bootstrap only

  // The gap fills: one Step applies both batches and publishes once.
  Result<EpochStats> drained = t.pipeline->Step(Batch(1, {2005}, {{5, 1}}));
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->batches_applied, 2u);
  EXPECT_EQ(drained->nodes_added, 2u);
  EXPECT_EQ(drained->num_nodes, 7u);
  EXPECT_EQ(t.capture.epochs.size(), 2u);
  EXPECT_EQ(t.capture.graph_sizes[1], 7u);
}

TEST(EpochPipelineTest, InvalidBatchLeavesPipelineServingLastEpoch) {
  PipelineUnderTest t;
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  Result<EpochStats> bad = t.pipeline->Step(Batch(1, {2005}, {{5, 99}}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(t.capture.epochs.size(), 1u);
  EXPECT_EQ(t.graph->num_nodes(), 5u);
  // The stream is not wedged: a corrected batch 1 still applies.
  Result<EpochStats> good = t.pipeline->Step(Batch(1, {2005}, {{5, 0}}));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->batches_applied, 1u);
}

TEST(EpochPipelineTest, PublisherErrorPropagates) {
  PipelineUnderTest t;
  t.capture.to_return = Status::IOError("disk full");
  EXPECT_FALSE(t.pipeline->Bootstrap().ok());
}

TEST(EpochPipelineTest, TotalIterationsSumsRankedEpochs) {
  PipelineUnderTest t;
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  ASSERT_TRUE(t.pipeline->Step(Batch(1, {2005}, {{5, 0}})).ok());
  ASSERT_TRUE(t.pipeline->Step(Batch(2, {2006}, {{6, 5}})).ok());
  int sum = 0;
  for (const EpochStats& stats : t.pipeline->history()) {
    sum += stats.iterations;
  }
  EXPECT_EQ(t.pipeline->total_iterations(), sum);
  EXPECT_GT(sum, 0);
}

TEST(EpochPipelineTest, FrontierModePassesDirtyNodesThrough) {
  PipelineUnderTest t("frontier");
  ASSERT_TRUE(t.pipeline->Bootstrap().ok());
  Result<EpochStats> stats =
      t.pipeline->Step(Batch(1, {2005, 2006}, {{5, 0}, {6, 3}}));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_nodes, 7u);
  EXPECT_TRUE(stats->converged);
  ASSERT_EQ(t.capture.score_sizes.size(), 2u);
  EXPECT_EQ(t.capture.score_sizes[1], 7u);
}

}  // namespace
}  // namespace stream
}  // namespace scholar
