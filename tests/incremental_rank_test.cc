// Property satellite: after N streamed batches, a warm incremental rank
// (seeded from the previous epoch via RankResult::score_mass) must land
// within tolerance of a cold full re-rank of the same graph AND converge
// in fewer total iterations — across every iterative kernel and thread
// counts {1, 2, 4, 8}. Also pins the bit-identical-across-threads
// guarantee for the warm path and the bounded drift of mode=frontier.

#include "stream/incremental_ranker.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/streaming_graph.h"
#include "test_util.h"

namespace scholar {
namespace stream {
namespace {

using testing_util::MakeRandomGraph;

constexpr int kThreadCounts[] = {1, 2, 4, 8};
/// Warm and cold solve the same fixed point to the same solver tolerance;
/// they may stop on opposite sides of it, so the allowed gap is a few
/// orders above the kernels' default tolerances and far below score scale.
constexpr double kScoreTolerance = 1e-8;

/// The streamed replay: base = the oldest `n_base` articles, then
/// `num_batches` equal windows of the remainder. MakeRandomGraph only
/// cites backwards, so every corpus edge survives the suffix-only split.
struct Replay {
  CitationGraph full;
  CitationGraph base;
  std::vector<EdgeBatch> batches;
};

Replay MakeReplay(size_t n, size_t n_base, size_t num_batches,
                  uint64_t seed) {
  Replay replay;
  replay.full = MakeRandomGraph(n, 5.0, 2000, 10, seed);
  const std::vector<Year>& years = replay.full.years();
  GraphBuilder builder;
  for (size_t i = 0; i < n_base; ++i) builder.AddNode(years[i]);
  for (NodeId u = 0; u < static_cast<NodeId>(n_base); ++u) {
    for (NodeId v : replay.full.References(u)) {
      SCHOLAR_CHECK_OK(builder.AddEdge(u, v));
    }
  }
  replay.base = std::move(builder).Build().value();
  const size_t remaining = n - n_base;
  size_t start = n_base;
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t count = remaining / num_batches + (b < remaining % num_batches);
    const size_t end = start + count;
    EdgeBatch batch;
    batch.sequence = b + 1;
    batch.node_years.assign(years.begin() + start, years.begin() + end);
    for (NodeId u = static_cast<NodeId>(start); u < static_cast<NodeId>(end);
         ++u) {
      for (NodeId v : replay.full.References(u)) {
        batch.edges.push_back({u, v});
      }
    }
    replay.batches.push_back(std::move(batch));
    start = end;
  }
  return replay;
}

IncrementalRankerOptions Options(const std::string& kernel, int threads,
                                 const std::string& mode) {
  IncrementalRankerOptions options;
  options.ranker = kernel;
  options.mode = mode;
  options.config.SetInt("threads", threads);
  return options;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

class IncrementalRankProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(IncrementalRankProperty, WarmMatchesColdInFewerIterationsAllThreads) {
  const std::string kernel = GetParam();
  const Replay replay = MakeReplay(/*n=*/1000, /*n_base=*/800,
                                   /*num_batches=*/4, /*seed=*/20180416);
  std::vector<double> reference_scores;  // warm result at threads=1
  for (int threads : kThreadCounts) {
    auto warm_result =
        IncrementalRanker::Create(Options(kernel, threads, "full"));
    ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();
    IncrementalRanker warm = std::move(warm_result).value();
    StreamingGraph stream(replay.base);
    ASSERT_TRUE(warm.RankCold(stream.graph()).ok());

    int warm_total = 0;
    int cold_total = 0;
    std::vector<double> warm_scores;
    std::vector<double> cold_scores;
    for (const EdgeBatch& batch : replay.batches) {
      ASSERT_TRUE(stream.Ingest(batch).ok());
      Result<RankResult> epoch = warm.RankWarm(stream.graph());
      ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
      EXPECT_TRUE(epoch->converged);
      warm_total += epoch->iterations;
      warm_scores = epoch->scores;

      // Cold oracle of the *same* epoch graph, fresh state each time.
      IncrementalRanker cold =
          IncrementalRanker::Create(Options(kernel, threads, "full")).value();
      Result<RankResult> oracle = cold.RankCold(stream.graph());
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      cold_total += oracle->iterations;
      cold_scores = oracle->scores;

      EXPECT_LE(epoch->iterations, oracle->iterations)
          << kernel << " threads=" << threads << " epoch seq "
          << batch.sequence << ": warm start took MORE rounds than cold";
      EXPECT_LE(MaxAbsDiff(epoch->scores, oracle->scores), kScoreTolerance)
          << kernel << " threads=" << threads;
    }
    EXPECT_LT(warm_total, cold_total)
        << kernel << " threads=" << threads
        << ": warm chain saved no iterations over cold re-ranks";
    EXPECT_LE(MaxAbsDiff(warm_scores, cold_scores), kScoreTolerance);

    // The warm path inherits the kernels' determinism guarantee: scores
    // are bit-identical at every thread count.
    if (reference_scores.empty()) {
      reference_scores = warm_scores;
    } else {
      EXPECT_EQ(warm_scores, reference_scores)
          << kernel << ": warm scores diverged at threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, IncrementalRankProperty,
                         ::testing::Values("pagerank", "twpr", "hits", "katz",
                                           "sceas"));

TEST(FrontierModeTest, BoundedDriftAndThreadDeterminism) {
  const Replay replay = MakeReplay(1000, 800, 4, 77);
  std::vector<double> reference_scores;
  for (int threads : kThreadCounts) {
    IncrementalRankerOptions options = Options("pagerank", threads,
                                               "frontier");
    options.frontier_tolerance = 1e-12;
    IncrementalRanker warm =
        IncrementalRanker::Create(options).value();
    StreamingGraph stream(replay.base);
    ASSERT_TRUE(warm.RankCold(stream.graph()).ok());
    std::vector<double> warm_scores;
    for (const EdgeBatch& batch : replay.batches) {
      ASSERT_TRUE(stream.Ingest(batch).ok());
      // Dirty set: the batch's new nodes plus everything they cite.
      std::vector<NodeId> dirty;
      const NodeId first =
          static_cast<NodeId>(stream.num_nodes() - batch.num_nodes());
      for (NodeId u = first; u < static_cast<NodeId>(stream.num_nodes());
           ++u) {
        dirty.push_back(u);
      }
      for (const StreamEdge& e : batch.edges) dirty.push_back(e.dst);
      Result<RankResult> epoch = warm.RankWarm(stream.graph(), dirty);
      ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
      warm_scores = epoch->scores;
    }
    // Frontier freezing trades exactness for work: documented drift bound
    // (DESIGN.md, streaming section) is orders looser than mode=full.
    IncrementalRanker cold =
        IncrementalRanker::Create(Options("pagerank", threads, "full"))
            .value();
    RankResult oracle = cold.RankCold(stream.graph()).value();
    const double drift = MaxAbsDiff(warm_scores, oracle.scores);
    EXPECT_LE(drift, 1e-5) << "threads=" << threads;
    if (reference_scores.empty()) {
      reference_scores = warm_scores;
    } else {
      EXPECT_EQ(warm_scores, reference_scores)
          << "frontier scores diverged at threads=" << threads;
    }
  }
}

TEST(FrontierModeTest, RequiresPagerank) {
  EXPECT_FALSE(IncrementalRanker::Create(Options("katz", 1, "frontier")).ok());
  EXPECT_FALSE(IncrementalRanker::Create(Options("hits", 1, "bogus")).ok());
}

TEST(ExtendSeedTest, RescalesByMassAndPadsWithYoungCohortMean) {
  // Old scores are a unit distribution with mass 10: the seed is the
  // solver-native vector (scores * mass), padded for the two new nodes
  // with the mean of the youngest 10% (here: the last entry, 4.0).
  const std::vector<double> old_scores = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> seed = ExtendSeedForGrownGraph(old_scores, 10.0, 6);
  ASSERT_EQ(seed.size(), 6u);
  EXPECT_DOUBLE_EQ(seed[0], 1.0);
  EXPECT_DOUBLE_EQ(seed[3], 4.0);
  EXPECT_DOUBLE_EQ(seed[4], 4.0);
  EXPECT_DOUBLE_EQ(seed[5], 4.0);
}

TEST(ExtendSeedTest, DegenerateInputsYieldNoSeed) {
  EXPECT_TRUE(ExtendSeedForGrownGraph({}, 1.0, 5).empty());
  EXPECT_TRUE(ExtendSeedForGrownGraph({0.5, 0.5}, 1.0, 1).empty());  // shrank
  EXPECT_TRUE(ExtendSeedForGrownGraph({0.5, 0.5}, 0.0, 4).empty());
  EXPECT_TRUE(ExtendSeedForGrownGraph({0.5, 0.5}, -1.0, 4).empty());
}

TEST(IncrementalRankerTest, WarmWithoutPreviousFallsBackToCold) {
  const CitationGraph graph = MakeRandomGraph(200, 4.0, 2000, 5, 3);
  IncrementalRanker ranker =
      IncrementalRanker::Create(Options("pagerank", 1, "full")).value();
  EXPECT_FALSE(ranker.has_previous());
  Result<RankResult> result = ranker.RankWarm(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ranker.has_previous());
}

TEST(IncrementalRankerTest, ShrunkGraphBreaksTheWarmChain) {
  const CitationGraph big = MakeRandomGraph(200, 4.0, 2000, 5, 3);
  const CitationGraph small = MakeRandomGraph(100, 4.0, 2000, 5, 3);
  IncrementalRanker ranker =
      IncrementalRanker::Create(Options("pagerank", 1, "full")).value();
  ASSERT_TRUE(ranker.RankCold(big).ok());
  EXPECT_EQ(ranker.RankWarm(small).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace stream
}  // namespace scholar
