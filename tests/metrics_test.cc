#include "eval/metrics.h"


#include <cmath>
#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(PairwiseAccuracyTest, PerfectAndInverted) {
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<EvalPair> pairs = {{0, 1}, {0, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(scores, pairs).value(), 1.0);
  std::vector<EvalPair> inverted = {{1, 0}, {2, 0}, {2, 1}};
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(scores, inverted).value(), 0.0);
}

TEST(PairwiseAccuracyTest, TiesCountHalf) {
  std::vector<double> scores = {0.5, 0.5};
  std::vector<EvalPair> pairs = {{0, 1}};
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(scores, pairs).value(), 0.5);
}

TEST(PairwiseAccuracyTest, MixedFraction) {
  std::vector<double> scores = {0.9, 0.1, 0.5, 0.5};
  std::vector<EvalPair> pairs = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  // correct, wrong, tie (0.5), wrong -> 1.5/4
  EXPECT_DOUBLE_EQ(PairwiseAccuracy(scores, pairs).value(), 0.375);
}

TEST(PairwiseAccuracyTest, Errors) {
  EXPECT_TRUE(
      PairwiseAccuracy({0.1}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(PairwiseAccuracy({0.1}, {{0, 5}}).status().IsInvalidArgument());
}

TEST(KendallTauTest, IdenticalIsOne) {
  std::vector<double> a = {0.1, 0.7, 0.3, 0.9};
  EXPECT_NEAR(KendallTau(a, a).value(), 1.0, 1e-12);
}

TEST(KendallTauTest, ReversedIsMinusOne) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {4, 3, 2, 1};
  EXPECT_NEAR(KendallTau(a, b).value(), -1.0, 1e-12);
}

TEST(KendallTauTest, KnownSmallExample) {
  // a-order: [0,1,2,3]; b values reorder 2 and 3 -> one discordant pair of
  // 6 total: tau = 1 - 2*(1/6) = 2/3.
  std::vector<double> a = {4, 3, 2, 1};
  std::vector<double> b = {4, 3, 1, 2};
  EXPECT_NEAR(KendallTau(a, b).value(), 2.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, Symmetry) {
  std::vector<double> a = {0.5, 0.1, 0.9, 0.3, 0.7};
  std::vector<double> b = {0.2, 0.8, 0.4, 0.6, 0.0};
  EXPECT_NEAR(KendallTau(a, b).value(), KendallTau(b, a).value(), 1e-12);
}

TEST(KendallTauTest, ErrorsOnMismatchOrTiny) {
  EXPECT_TRUE(KendallTau({1, 2}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(KendallTau({1}, {1}).status().IsInvalidArgument());
}

TEST(SpearmanTest, PerfectMonotoneIsOne) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(SpearmanRho(a, b).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {9, 5, 1};
  EXPECT_NEAR(SpearmanRho(a, b).value(), -1.0, 1e-12);
}

TEST(SpearmanTest, TiesUseMidranks) {
  // Classic example with ties; verify against hand computation.
  std::vector<double> a = {1, 2, 2, 4};   // ranks 1, 2.5, 2.5, 4
  std::vector<double> b = {1, 2, 3, 4};   // ranks 1, 2, 3, 4
  // Pearson of (1,2.5,2.5,4) vs (1,2,3,4): cov=4.5, va=4.5, vb=5 ->
  // rho = 4.5/sqrt(22.5) = 0.94868...
  EXPECT_NEAR(SpearmanRho(a, b).value(), 4.5 / std::sqrt(22.5), 1e-12);
}

TEST(SpearmanTest, ConstantInputRejected) {
  EXPECT_TRUE(SpearmanRho({1, 1, 1}, {1, 2, 3}).status().IsInvalidArgument());
}

TEST(NdcgTest, PerfectRankingIsOne) {
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<double> rel = {3.0, 2.0, 0.0};
  EXPECT_NEAR(NdcgAtK(scores, rel, 3).value(), 1.0, 1e-12);
}

TEST(NdcgTest, KnownValue) {
  // Ranking puts the irrelevant item first.
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<double> rel = {0.0, 1.0, 1.0};
  // DCG = 0/log2(2) + 1/log2(3) + 1/log2(4) = 0.63093 + 0.5
  // IDCG = 1/log2(2) + 1/log2(3) = 1 + 0.63093
  const double dcg = 1.0 / std::log2(3.0) + 0.5;
  const double idcg = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(scores, rel, 3).value(), dcg / idcg, 1e-12);
}

TEST(NdcgTest, KTruncates) {
  std::vector<double> scores = {0.9, 0.5, 0.1};
  std::vector<double> rel = {0.0, 0.0, 1.0};
  // Top-2 contains no relevant item.
  EXPECT_DOUBLE_EQ(NdcgAtK(scores, rel, 2).value(), 0.0);
}

TEST(NdcgTest, ZeroRelevanceGivesZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({0.5, 0.1}, {0.0, 0.0}, 2).value(), 0.0);
}

TEST(NdcgTest, Errors) {
  EXPECT_TRUE(NdcgAtK({0.5}, {0.1, 0.2}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(NdcgAtK({0.5}, {0.1}, 0).status().IsInvalidArgument());
}

TEST(PrecisionRecallTest, KnownValues) {
  std::vector<double> scores = {0.9, 0.7, 0.5, 0.3};
  std::vector<bool> rel = {true, false, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, rel, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, rel, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, rel, 4).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(scores, rel, 1).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(scores, rel, 3).value(), 1.0);
}

TEST(PrecisionRecallTest, NoRelevantItems) {
  std::vector<bool> rel = {false, false};
  EXPECT_DOUBLE_EQ(RecallAtK({0.5, 0.1}, rel, 2).value(), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({0.5, 0.1}, rel, 2).value(), 0.0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<double> scores = {0.9, 0.8, 0.1, 0.05};
  std::vector<bool> rel = {true, true, false, false};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, rel).value(), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Relevant at positions 1 and 3 of the ranking: AP = (1/1 + 2/3) / 2.
  std::vector<double> scores = {0.9, 0.7, 0.5};
  std::vector<bool> rel = {true, false, true};
  EXPECT_NEAR(AveragePrecision(scores, rel).value(), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(AveragePrecisionTest, NoRelevantIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5, 0.2}, {false, false}).value(), 0.0);
}

class MetricsRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricsRandomSweep, TauAndSpearmanAgreeOnSign) {
  // Random score vectors: tau and rho must have the same sign when both are
  // far from zero.
  srand(GetParam());
  std::vector<double> a(60), b(60);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = (rand() % 1000) / 1000.0;
    b[i] = 0.7 * a[i] + 0.3 * ((rand() % 1000) / 1000.0);  // correlated
  }
  double tau = KendallTau(a, b).value();
  double rho = SpearmanRho(a, b).value();
  EXPECT_GT(tau, 0.2);
  EXPECT_GT(rho, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsRandomSweep,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scholar
