#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace scholar {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) ++seen[rng.NextBounded(6)];
  for (int v = 0; v < 6; ++v) {
    // Each face of a fair die: expected 1000, allow generous slack.
    EXPECT_GT(seen[v], 800) << "value " << v;
    EXPECT_LT(seen[v], 1200) << "value " << v;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-3.0, 5.0);
    ASSERT_GE(d, -3.0);
    ASSERT_LT(d, 5.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  Rng rng2(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.NextBernoulli(0.0));
    EXPECT_TRUE(rng2.NextBernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(37);
  const double lambda = 0.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double e = rng.NextExponential(lambda);
    ASSERT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.1);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(41);
  std::vector<double> samples(9999);
  for (double& s : samples) s = rng.NextLogNormal(1.0, 0.5);
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  // Median of LogNormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(samples[samples.size() / 2], std::exp(1.0), 0.15);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ZipfRanksAreMonotoneInFrequency) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.NextZipf(10, 1.0)];
  // Rank 0 must dominate rank 3 which must dominate rank 9.
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[9]);
  EXPECT_GT(counts[9], 0);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(53);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 25000; ++i) ++counts[rng.NextZipf(5, 0.0)];
  for (int c : counts) {
    EXPECT_GT(c, 4300);
    EXPECT_LT(c, 5700);
  }
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(59);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 2.0), 0u);
}

TEST(RngTest, NextDiscreteProportions) {
  Rng rng(61);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    size_t idx = rng.NextDiscrete(weights);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, NextDiscreteZeroTotalReturnsSize) {
  Rng rng(67);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.NextDiscrete(weights), weights.size());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(71);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to match.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(73);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(79);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Next() == child2.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  std::vector<double> weights = {2.0, 1.0, 0.0, 1.0};
  DiscreteSampler sampler(weights);
  EXPECT_EQ(sampler.size(), 4u);
  Rng rng(83);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.25);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[1], 1.0, 0.15);
}

TEST(DiscreteSamplerTest, SingleElement) {
  DiscreteSampler sampler({5.0});
  Rng rng(89);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST_P(RngSeedSweep, BoundedIsFullRangeOverManyDraws) {
  Rng rng(GetParam());
  uint64_t max_seen = 0, min_seen = 99;
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.NextBounded(100);
    max_seen = std::max(max_seen, v);
    min_seen = std::min(min_seen, v);
  }
  EXPECT_EQ(max_seen, 99u);
  EXPECT_EQ(min_seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 42, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace scholar
