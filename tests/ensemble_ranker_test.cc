#include "ensemble/ensemble_ranker.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/cohort.h"
#include "rank/citation_count.h"
#include "rank/pagerank.h"
#include "rank/time_weighted_pagerank.h"
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

std::shared_ptr<const Ranker> PageRank() {
  return std::make_shared<PageRankRanker>();
}

TEST(EnsembleRankerTest, NameDerivesFromBase) {
  EnsembleRanker ens(PageRank());
  EXPECT_EQ(ens.name(), "ens_pagerank");
}

TEST(EnsembleRankerTest, SingleSliceMatchesNormalizedBase) {
  CitationGraph g = MakeRandomGraph(200, 4, 1990, 10, 3);
  EnsembleOptions o;
  o.num_slices = 1;
  o.normalizer = NormalizerKind::kRankPercentile;
  o.scope = NormalizationScope::kSnapshot;
  EnsembleRanker ens(PageRank(), o);
  RankResult ens_result = ens.Rank(g).value();
  RankResult base_result = PageRankRanker().Rank(g).value();
  std::vector<double> expected = MidrankPercentiles(base_result.scores);
  ASSERT_EQ(ens_result.scores.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(ens_result.scores[i], expected[i], 1e-12);
  }
}

TEST(EnsembleRankerTest, ScoresInUnitIntervalWithPercentile) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 5);
  EnsembleOptions o;
  o.num_slices = 5;
  EnsembleRanker ens(PageRank(), o);
  RankResult r = ens.Rank(g).value();
  for (double s : r.scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(EnsembleRankerTest, ReportsSnapshotDetails) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 5);
  EnsembleOptions o;
  o.num_slices = 4;
  EnsembleRanker ens(PageRank(), o);
  std::vector<EnsembleRanker::SnapshotDetail> details;
  RankContext ctx;
  ctx.graph = &g;
  RankResult r = ens.RankWithDetails(ctx, &details).value();
  ASSERT_EQ(details.size(), 4u);
  // Snapshots are accumulative: sizes must be non-decreasing.
  for (size_t i = 1; i < details.size(); ++i) {
    EXPECT_GE(details[i].num_nodes, details[i - 1].num_nodes);
    EXPECT_GE(details[i].num_edges, details[i - 1].num_edges);
    EXPECT_GT(details[i].boundary_year, details[i - 1].boundary_year);
  }
  EXPECT_EQ(details.back().num_nodes, g.num_nodes());
  EXPECT_EQ(r.iterations,
            details[0].iterations + details[1].iterations +
                details[2].iterations + details[3].iterations);
}

TEST(EnsembleRankerTest, ReducesRecencyBiasOfPageRank) {
  SyntheticOptions opts;
  opts.num_articles = 4000;
  opts.num_years = 16;
  opts.seed = 3;
  Corpus corpus = GenerateSyntheticCorpus(opts, "bias").value();

  RankResult pr = PageRankRanker().Rank(corpus.graph).value();
  EnsembleOptions o;
  o.num_slices = 8;
  EnsembleRanker ens(PageRank(), o);
  RankResult ens_result = ens.Rank(corpus.graph).value();

  const double pr_slope =
      RecencyBiasSlope(PercentilesByYear(corpus.graph, pr.scores));
  const double ens_slope =
      RecencyBiasSlope(PercentilesByYear(corpus.graph, ens_result.scores));
  // PageRank is biased against recent cohorts (negative slope); the
  // cohort-normalized ensemble must be at least twice as flat.
  EXPECT_LT(pr_slope, 0.0);
  EXPECT_LT(std::abs(ens_slope), std::abs(pr_slope) * 0.5);
}

TEST(EnsembleRankerTest, RecencyWeightedCombinerLeansOnLateSnapshots) {
  CitationGraph g = MakeRandomGraph(400, 4, 1985, 20, 7);
  EnsembleOptions mean_o;
  mean_o.num_slices = 6;
  mean_o.combiner = EnsembleCombiner::kMean;
  EnsembleOptions rec_o = mean_o;
  rec_o.combiner = EnsembleCombiner::kRecencyWeighted;
  rec_o.gamma = 0.5;
  RankResult mean_r = EnsembleRanker(PageRank(), mean_o).Rank(g).value();
  RankResult rec_r = EnsembleRanker(PageRank(), rec_o).Rank(g).value();
  // Different combiners must actually change the scores.
  bool any_diff = false;
  for (size_t i = 0; i < mean_r.scores.size(); ++i) {
    if (std::abs(mean_r.scores[i] - rec_r.scores[i]) > 1e-9) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
  // gamma=1 recency weighting degenerates to the mean.
  EnsembleOptions gamma1 = rec_o;
  gamma1.gamma = 1.0;
  RankResult g1 = EnsembleRanker(PageRank(), gamma1).Rank(g).value();
  for (size_t i = 0; i < mean_r.scores.size(); ++i) {
    EXPECT_NEAR(g1.scores[i], mean_r.scores[i], 1e-12);
  }
}

TEST(EnsembleRankerTest, ScopeChangesScores) {
  CitationGraph g = MakeRandomGraph(400, 4, 1985, 20, 13);
  EnsembleOptions cohort_o;
  cohort_o.num_slices = 6;
  cohort_o.scope = NormalizationScope::kSliceCohort;
  EnsembleOptions snap_o = cohort_o;
  snap_o.scope = NormalizationScope::kSnapshot;
  RankResult cohort_r = EnsembleRanker(PageRank(), cohort_o).Rank(g).value();
  RankResult snap_r = EnsembleRanker(PageRank(), snap_o).Rank(g).value();
  EXPECT_NE(cohort_r.scores, snap_r.scores);
}

TEST(EnsembleRankerTest, CohortScopeRemovesBiasBetterThanSnapshotScope) {
  SyntheticOptions opts;
  opts.num_articles = 4000;
  opts.num_years = 16;
  opts.seed = 3;
  Corpus corpus = GenerateSyntheticCorpus(opts, "scope").value();
  EnsembleOptions cohort_o;
  cohort_o.num_slices = 8;
  EnsembleOptions snap_o = cohort_o;
  snap_o.scope = NormalizationScope::kSnapshot;
  auto cohort_scores =
      EnsembleRanker(PageRank(), cohort_o).Rank(corpus.graph).value().scores;
  auto snap_scores =
      EnsembleRanker(PageRank(), snap_o).Rank(corpus.graph).value().scores;
  double cohort_slope =
      RecencyBiasSlope(PercentilesByYear(corpus.graph, cohort_scores));
  double snap_slope =
      RecencyBiasSlope(PercentilesByYear(corpus.graph, snap_scores));
  EXPECT_LT(std::abs(cohort_slope), std::abs(snap_slope));
}

TEST(EnsembleRankerTest, WindowLimitsContributingSnapshots) {
  CitationGraph g = MakeRandomGraph(400, 4, 1985, 20, 17);
  EnsembleOptions all_o;
  all_o.num_slices = 6;
  all_o.window = 0;
  EnsembleOptions w1_o = all_o;
  w1_o.window = 1;
  RankResult all_r = EnsembleRanker(PageRank(), all_o).Rank(g).value();
  RankResult w1_r = EnsembleRanker(PageRank(), w1_o).Rank(g).value();
  EXPECT_NE(all_r.scores, w1_r.scores);
  // A huge window is equivalent to window = 0 (all snapshots).
  EnsembleOptions big_o = all_o;
  big_o.window = 1000;
  RankResult big_r = EnsembleRanker(PageRank(), big_o).Rank(g).value();
  EXPECT_EQ(all_r.scores, big_r.scores);
}

TEST(EnsembleRankerTest, NegativeWindowRejected) {
  EnsembleOptions o;
  o.window = -1;
  EXPECT_TRUE(EnsembleRanker(PageRank(), o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(ScopeStringsTest, RoundTrip) {
  EXPECT_EQ(NormalizationScopeFromString("cohort").value(),
            NormalizationScope::kSliceCohort);
  EXPECT_EQ(NormalizationScopeFromString("snapshot").value(),
            NormalizationScope::kSnapshot);
  EXPECT_TRUE(NormalizationScopeFromString("?").status().IsInvalidArgument());
  EXPECT_EQ(NormalizationScopeToString(NormalizationScope::kSliceCohort),
            "cohort");
}

TEST(EnsembleRankerTest, ValidatesOptions) {
  CitationGraph g = MakeTinyGraph();
  EnsembleOptions o;
  o.num_slices = 0;
  EXPECT_TRUE(
      EnsembleRanker(PageRank(), o).Rank(g).status().IsInvalidArgument());
  o = EnsembleOptions();
  o.combiner = EnsembleCombiner::kRecencyWeighted;
  o.gamma = 0.0;
  EXPECT_TRUE(
      EnsembleRanker(PageRank(), o).Rank(g).status().IsInvalidArgument());
  o.gamma = 1.5;
  EXPECT_TRUE(
      EnsembleRanker(PageRank(), o).Rank(g).status().IsInvalidArgument());
}

TEST(EnsembleRankerTest, EmptyGraph) {
  RankResult r = EnsembleRanker(PageRank()).Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(EnsembleRankerTest, WorksWithCitationCountBase) {
  CitationGraph g = MakeRandomGraph(200, 3, 1990, 10, 9);
  EnsembleRanker ens(std::make_shared<CitationCountRanker>());
  RankResult r = ens.Rank(g).value();
  EXPECT_EQ(r.scores.size(), g.num_nodes());
  EXPECT_EQ(r.iterations, 0);
}

TEST(EnsembleRankerTest, TwprBaseConverges) {
  CitationGraph g = MakeRandomGraph(300, 4, 1985, 20, 11);
  EnsembleRanker ens(std::make_shared<TimeWeightedPageRank>());
  RankResult r = ens.Rank(g).value();
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);
}

TEST(RestrictAuthorsTest, KeepsOnlySnapshotPapers) {
  PaperAuthors parent = PaperAuthors::FromLists({{0}, {1}, {0, 2}, {2}});
  // Snapshot keeps parent papers 1 and 2.
  PaperAuthors sub = RestrictAuthorsToSnapshot(parent, {1, 2});
  EXPECT_EQ(sub.num_papers(), 2u);
  auto a0 = sub.AuthorsOf(0);
  ASSERT_EQ(a0.size(), 1u);
  EXPECT_EQ(a0[0], 1u);
  auto a1 = sub.AuthorsOf(1);
  ASSERT_EQ(a1.size(), 2u);
  EXPECT_EQ(a1[0], 0u);
  EXPECT_EQ(a1[1], 2u);
}

TEST(EnsembleParallelTest, IndependentSnapshotsBitIdenticalAcrossThreads) {
  CitationGraph g = MakeRandomGraph(1500, 5, 1980, 30, 41);
  EnsembleOptions o;
  o.num_slices = 6;
  o.warm_start = false;  // snapshots rank concurrently in this mode
  o.threads = 1;
  RankContext ctx;
  ctx.graph = &g;
  std::vector<EnsembleRanker::SnapshotDetail> details_serial;
  RankResult serial = EnsembleRanker(PageRank(), o)
                          .RankWithDetails(ctx, &details_serial)
                          .value();
  for (int threads : {2, 4}) {
    o.threads = threads;
    std::vector<EnsembleRanker::SnapshotDetail> details_parallel;
    RankResult parallel = EnsembleRanker(PageRank(), o)
                              .RankWithDetails(ctx, &details_parallel)
                              .value();
    EXPECT_EQ(serial.scores, parallel.scores) << threads << " threads";
    EXPECT_EQ(serial.iterations, parallel.iterations);
    ASSERT_EQ(details_serial.size(), details_parallel.size());
    for (size_t i = 0; i < details_serial.size(); ++i) {
      EXPECT_EQ(details_serial[i].boundary_year,
                details_parallel[i].boundary_year);
      EXPECT_EQ(details_serial[i].num_nodes, details_parallel[i].num_nodes);
      EXPECT_EQ(details_serial[i].iterations, details_parallel[i].iterations);
    }
  }
}

TEST(EnsembleParallelTest, WarmStartChainBitIdenticalAcrossThreads) {
  CitationGraph g = MakeRandomGraph(1500, 5, 1980, 30, 43);
  EnsembleOptions o;
  o.num_slices = 6;
  o.warm_start = true;  // sequential chain; inner loops use the pool
  o.window = 3;         // exercise the windowed accumulation path too
  o.threads = 1;
  RankResult serial = EnsembleRanker(PageRank(), o).Rank(g).value();
  for (int threads : {2, 4}) {
    o.threads = threads;
    RankResult parallel = EnsembleRanker(PageRank(), o).Rank(g).value();
    EXPECT_EQ(serial.scores, parallel.scores) << threads << " threads";
    EXPECT_EQ(serial.iterations, parallel.iterations);
  }
}

TEST(EnsembleParallelTest, ParallelModeMatchesSequentialColdStart) {
  // warm_start only changes the iteration path, but with threads=1 the
  // cold-start ensemble uses the sequential code and with threads>1 the
  // concurrent one — the two code paths must agree exactly.
  CitationGraph g = MakeRandomGraph(800, 4, 1985, 20, 47);
  EnsembleOptions o;
  o.num_slices = 5;
  o.warm_start = false;
  o.combiner = EnsembleCombiner::kRecencyWeighted;
  o.gamma = 0.7;
  o.threads = 1;
  RankResult sequential = EnsembleRanker(PageRank(), o).Rank(g).value();
  o.threads = 4;
  RankResult concurrent = EnsembleRanker(PageRank(), o).Rank(g).value();
  EXPECT_EQ(sequential.scores, concurrent.scores);
}

TEST(EnsembleCombinerTest, StringRoundTrip) {
  EXPECT_EQ(EnsembleCombinerFromString("mean").value(),
            EnsembleCombiner::kMean);
  EXPECT_EQ(EnsembleCombinerFromString("recency").value(),
            EnsembleCombiner::kRecencyWeighted);
  EXPECT_TRUE(EnsembleCombinerFromString("?").status().IsInvalidArgument());
  EXPECT_EQ(EnsembleCombinerToString(EnsembleCombiner::kMean), "mean");
}

}  // namespace
}  // namespace scholar
