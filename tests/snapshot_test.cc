#include "serve/snapshot.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rank/ranker.h"
#include "test_util.h"

namespace scholar {
namespace serve {
namespace {

using testing_util::MakeTinyGraph;

RankingOutput MakeRanking(const std::vector<double>& scores) {
  RankingOutput out;
  out.scores = scores;
  out.ranks = ScoresToRanks(scores);
  out.percentiles = RankPercentiles(scores);
  return out;
}

SnapshotMeta TestMeta(uint64_t id = 7) {
  SnapshotMeta meta;
  meta.snapshot_id = id;
  meta.created_unix = 1700000000;
  meta.ranker_name = "twpr";
  meta.corpus_name = "tiny";
  return meta;
}

ScoreSnapshot TinySnapshot(uint64_t id = 7) {
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking = MakeRanking({0.30, 0.10, 0.25, 0.20, 0.15});
  return ScoreSnapshot::Build(graph, ranking, TestMeta(id)).value();
}

std::string Serialize(const ScoreSnapshot& snapshot) {
  std::ostringstream out(std::ios::binary);
  SCHOLAR_CHECK_OK(snapshot.WriteTo(&out));
  return out.str();
}

Result<ScoreSnapshot> Deserialize(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return ScoreSnapshot::Read(&in);
}

TEST(ScoreSnapshotTest, BuildExposesRankingAndGraphViews) {
  ScoreSnapshot snap = TinySnapshot();
  ASSERT_EQ(snap.num_nodes(), 5u);
  ASSERT_EQ(snap.num_edges(), 6u);
  EXPECT_DOUBLE_EQ(snap.score(0), 0.30);
  EXPECT_EQ(snap.rank(0), 0u);
  EXPECT_EQ(snap.rank(1), 4u);
  EXPECT_DOUBLE_EQ(snap.percentile(0), 1.0);
  EXPECT_EQ(snap.year(4), 2004);

  // Top is the precomputed descending order: 0, 2, 3, 4, 1.
  std::span<const NodeId> top = snap.Top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
  EXPECT_EQ(snap.Top(100).size(), 5u);  // k clamps

  // Paging walks the same order.
  std::span<const NodeId> page = snap.TopPage(3, 10);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_EQ(page[0], 4u);
  EXPECT_EQ(page[1], 1u);
  EXPECT_TRUE(snap.TopPage(5, 10).empty());

  // Adjacency matches the source graph: node 2 is cited by 3 and 4.
  std::span<const NodeId> citers = snap.Citers(2);
  ASSERT_EQ(citers.size(), 2u);
  EXPECT_EQ(citers[0], 3u);
  EXPECT_EQ(citers[1], 4u);
  std::span<const NodeId> refs = snap.References(2);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], 0u);
  EXPECT_EQ(refs[1], 1u);
}

TEST(ScoreSnapshotTest, BuildRejectsShapeMismatch) {
  CitationGraph graph = MakeTinyGraph();
  RankingOutput ranking = MakeRanking({0.5, 0.5});  // 2 scores, 5 nodes
  EXPECT_TRUE(ScoreSnapshot::Build(graph, ranking, TestMeta())
                  .status()
                  .IsInvalidArgument());
}

TEST(ScoreSnapshotTest, RoundTripPreservesEverything) {
  ScoreSnapshot original = TinySnapshot();
  ScoreSnapshot reread = Deserialize(Serialize(original)).value();
  EXPECT_EQ(reread, original);
  EXPECT_EQ(reread.meta(), original.meta());
}

TEST(ScoreSnapshotTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.bin";
  ScoreSnapshot original = TinySnapshot();
  ASSERT_TRUE(original.WriteToFile(path).ok());
  ScoreSnapshot reread = ScoreSnapshot::ReadFile(path).value();
  EXPECT_EQ(reread, original);
}

TEST(ScoreSnapshotTest, EmptyGraphRoundTrips) {
  CitationGraph graph;
  RankingOutput ranking;  // all views empty
  ScoreSnapshot snap =
      ScoreSnapshot::Build(graph, ranking, TestMeta()).value();
  ScoreSnapshot reread = Deserialize(Serialize(snap)).value();
  EXPECT_EQ(reread.num_nodes(), 0u);
  EXPECT_TRUE(reread.Top(10).empty());
}

TEST(ScoreSnapshotTest, EveryTruncationIsRejected) {
  const std::string bytes = Serialize(TinySnapshot());
  // No prefix of a valid snapshot parses: truncation anywhere — header,
  // section table, or payload — must surface as Corruption, never as a
  // short-but-accepted artifact.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<ScoreSnapshot> result = Deserialize(bytes.substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_TRUE(result.status().IsCorruption()) << "prefix " << len;
  }
}

TEST(ScoreSnapshotTest, PayloadBitFlipFailsChecksum) {
  const std::string clean = Serialize(TinySnapshot());
  // Flip one byte near the end (inside some payload section, well past the
  // header) and expect a checksum mismatch.
  std::string corrupt = clean;
  corrupt[corrupt.size() - 3] ^= 0x40;
  Result<ScoreSnapshot> result = Deserialize(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, BadMagicAndVersionAreRejected) {
  std::string bytes = Serialize(TinySnapshot());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_TRUE(Deserialize(wrong_magic).status().IsCorruption());

  std::string wrong_version = bytes;
  wrong_version[4] = 99;  // version field follows the 4-byte magic
  Result<ScoreSnapshot> result = Deserialize(wrong_version);
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

// Byte offsets into a serialized TinySnapshot, fixed by the format: 4-byte
// magic, u32 version, u64 n, u64 m, u64 snapshot_id, i64 created_unix,
// then the u32 length prefix of the ranker name.
constexpr size_t kNodeCountOffset = 8;
constexpr size_t kRankerNameLenOffset = 40;

TEST(ScoreSnapshotTest, ShortOfHeaderIsTypedTruncationError) {
  const std::string bytes = Serialize(TinySnapshot());
  // 10 bytes: full magic + version, but the header counts are cut off.
  Result<ScoreSnapshot> result = Deserialize(bytes.substr(0, 10));
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("truncated snapshot header"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, ImplausibleNodeCountIsRejectedBeforeAllocation) {
  std::string bytes = Serialize(TinySnapshot());
  const uint64_t absurd = uint64_t{1} << 40;
  bytes.replace(kNodeCountOffset, sizeof(absurd),
                reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  Result<ScoreSnapshot> result = Deserialize(bytes);
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("implausible snapshot header"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, ImplausibleMetaStringLengthIsRejected) {
  std::string bytes = Serialize(TinySnapshot());
  const uint32_t absurd = 0xFFFFFFFFu;
  bytes.replace(kRankerNameLenOffset, sizeof(absurd),
                reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  Result<ScoreSnapshot> result = Deserialize(bytes);
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("implausible ranker name length"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, DeclaredSectionBytesOverflowingFileIsRejected) {
  // Inflate the first section header's payload_bytes so the table's declared
  // total exceeds the file size; the reader must reject it up front from the
  // seekable-stream size probe instead of reading gigabytes of nothing.
  std::string bytes = Serialize(TinySnapshot());
  // Section table begins after the meta strings ("twpr", "tiny"): u32 count,
  // then {u32 tag, u64 payload_bytes, u32 crc} records.
  const size_t table_offset = kRankerNameLenOffset + (4 + 4) + (4 + 4);
  const size_t first_payload_bytes_offset = table_offset + 4 + 4;
  const uint64_t absurd = uint64_t{1} << 40;
  bytes.replace(first_payload_bytes_offset, sizeof(absurd),
                reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  Result<ScoreSnapshot> result = Deserialize(bytes);
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("remain in the file"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, WrongSectionCountIsRejected) {
  std::string bytes = Serialize(TinySnapshot());
  const size_t count_offset = kRankerNameLenOffset + (4 + 4) + (4 + 4);
  const uint32_t wrong = 3;
  bytes.replace(count_offset, sizeof(wrong),
                reinterpret_cast<const char*>(&wrong), sizeof(wrong));
  Result<ScoreSnapshot> result = Deserialize(bytes);
  ASSERT_TRUE(result.status().IsCorruption());
  EXPECT_NE(result.status().message().find("sections"), std::string::npos)
      << result.status().ToString();
}

TEST(ScoreSnapshotTest, GarbageFileIsRejected) {
  EXPECT_TRUE(Deserialize("not a snapshot at all").status().IsCorruption());
  EXPECT_TRUE(Deserialize("").status().IsCorruption());
}

TEST(ScoreSnapshotTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ScoreSnapshot::ReadFile("/nonexistent/snap.bin").status().IsIOError());
}

}  // namespace
}  // namespace serve
}  // namespace scholar
