// Drives the scholar_analyze binary against the committed fixture
// snippets in tests/analyze_fixtures/, proving each dataflow rule fires
// on a violation and stays quiet on compliant code, and exercising the
// SARIF / baseline / cache surfaces end to end. The fixture tree mirrors
// src/ paths because three of the four rules are path-scoped
// (hot-loop-alloc to the ranking hot path, determinism to
// rank/ensemble/stream/serve).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

#ifndef SCHOLAR_ANALYZE_BIN
#error "SCHOLAR_ANALYZE_BIN must point at the scholar_analyze executable"
#endif
#ifndef SCHOLAR_ANALYZE_FIXTURES
#error "SCHOLAR_ANALYZE_FIXTURES must point at tests/analyze_fixtures"
#endif

struct AnalyzeRun {
  int exit_code;
  std::string output;
};

std::string Fixture(const std::string& rel) {
  return std::string(SCHOLAR_ANALYZE_FIXTURES) + "/" + rel;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "scholar_analyze_test_" + name;
}

/// Runs the analyzer with raw arguments, capturing stdout+stderr.
AnalyzeRun RunAnalyzeArgs(const std::vector<std::string>& args) {
  std::string cmd = std::string(SCHOLAR_ANALYZE_BIN);
  for (const std::string& a : args) cmd += " " + a;
  cmd += " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  AnalyzeRun run{-1, {}};
  if (pipe == nullptr) return run;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

AnalyzeRun RunAnalyze(const std::vector<std::string>& fixtures) {
  std::vector<std::string> args;
  for (const std::string& f : fixtures) args.push_back(Fixture(f));
  return RunAnalyzeArgs(args);
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::string ReadAll(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot read " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Minimal JSON well-formedness check: every string literal closes on its
/// line of sight (escapes honored), and braces/brackets balance outside
/// strings and never go negative. Catches the classes of breakage a
/// hand-rolled serializer can produce (unescaped quote, missing brace)
/// without needing a JSON library.
bool JsonIsBalanced(const std::string& text) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': if (--brace < 0) return false; break;
      case '[': ++bracket; break;
      case ']': if (--bracket < 0) return false; break;
      default: break;
    }
  }
  return !in_string && brace == 0 && bracket == 0;
}

// ---------------------------------------------------------------------------
// unchecked-status
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, UncheckedStatusFiresOnDroppedAndCastValues) {
  AnalyzeRun run = RunAnalyze({"src/data/status_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status:"), 4u)
      << run.output;
  // Both discard shapes are diagnosed distinctly.
  EXPECT_EQ(CountOccurrences(run.output, "discarded with a void cast"), 2u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "is ignored"), 2u) << run.output;
  // Result<T> and Status callees are both resolved.
  EXPECT_NE(run.output.find("'ParseCount' returns Result"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'Flush' (Status)"), std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, UncheckedStatusQuietOnConsumedValues) {
  AnalyzeRun run = RunAnalyze({"src/data/status_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unchecked-status:"), 0u)
      << run.output;
}

// ---------------------------------------------------------------------------
// hot-loop-alloc
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, HotLoopAllocFiresInsideKernelLoops) {
  AnalyzeRun run = RunAnalyze({"src/rank/kernel/alloc_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "hot-loop-alloc:"), 4u)
      << run.output;
  EXPECT_NE(run.output.find("'new' inside a hot-path loop"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'malloc' inside a hot-path loop"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("container 'push_back'"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'to_string' builds a heap string"),
            std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, HotLoopAllocQuietOnInitScopeAndColdPaths) {
  // A marked function, a marked loop, out-of-loop growth, and return/throw
  // statements: none may fire.
  AnalyzeRun run = RunAnalyze({"src/rank/kernel/alloc_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "hot-loop-alloc:"), 0u)
      << run.output;
}

TEST(ScholarAnalyzeTest, HotLoopAllocScopedToHotPaths) {
  // The same per-iteration push_back/to_string, under src/eval/: clean.
  AnalyzeRun run = RunAnalyze({"src/eval/alloc_ok_outside_hot_path.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, DeterminismFiresOnUnorderedIterationAndWallClock) {
  AnalyzeRun run = RunAnalyze({"src/ensemble/det_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "determinism:"), 3u) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "unordered container 'weights_'"),
            2u)
      << run.output;
  EXPECT_NE(run.output.find("'time' is wall-clock/PRNG state"),
            std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, DeterminismQuietOnOrderedAndAuditedIteration) {
  AnalyzeRun run = RunAnalyze({"src/ensemble/det_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "determinism:"), 0u) << run.output;
}

TEST(ScholarAnalyzeTest, DeterminismFiresOnClockReadsInServingTier) {
  // Sub-check (c): posix clock calls and chrono ::now() inside
  // rank/ensemble/stream/serve are findings.
  AnalyzeRun run = RunAnalyze({"src/serve/wallclock_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "determinism:"), 4u) << run.output;
  EXPECT_NE(run.output.find("'clock_gettime' reads the clock"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'gettimeofday' reads the clock"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'timerfd_create' reads the clock"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'steady_clock::now()' reads the clock"),
            std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, DeterminismExemptsLatencyHistogramModule) {
  // The src/serve/latency_histogram* prefix is the one sanctioned clock
  // reader: duration measurement never feeds back into results.
  AnalyzeRun run = RunAnalyze({"src/serve/latency_histogram_fixture.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "determinism:"), 0u) << run.output;
}

TEST(ScholarAnalyzeTest, NolintWithoutReasonDoesNotSuppress) {
  // The analyzer's suppression contract requires a ": reason" tail; a bare
  // NOLINT(determinism) is not an audit record and must not suppress.
  AnalyzeRun run = RunAnalyze({"src/ensemble/nolint_no_reason.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "determinism:"), 1u) << run.output;
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, LockOrderDetectsTwoMutexCycle) {
  AnalyzeRun run = RunAnalyze({"src/serve/lock_cycle2.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "lock-order cycle:"), 1u)
      << run.output;
  // Mutex nodes are class-qualified and the witness names both functions.
  EXPECT_NE(run.output.find("'PairState::alpha_' -> 'PairState::beta_'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("PairState::Retire"), std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, LockOrderDetectsThreeMutexCycleThroughCall) {
  // One edge of the triangle only exists through the may-acquire fixpoint:
  // RotateC holds c_ and calls AcquireRoot, which locks a_.
  AnalyzeRun run = RunAnalyze({"src/serve/lock_cycle3.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "lock-order cycle:"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("'TriadState::b_' -> 'TriadState::c_'"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("calls 'AcquireRoot' which may acquire 'TriadState::a_'"),
      std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, LockOrderReportsSelfDeadlock) {
  AnalyzeRun run = RunAnalyze({"src/serve/lock_self.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "self-deadlock:"), 1u)
      << run.output;
  EXPECT_NE(run.output.find("'Reentrant::mu_'"), std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, LockOrderQuietOnConsistentOrder) {
  AnalyzeRun run = RunAnalyze({"src/serve/lock_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "lock-order"), 0u) << run.output;
}

TEST(ScholarAnalyzeTest, LockOrderNolintRemovesEdge) {
  // Identical inversion to lock_cycle2.cc, but the inverted acquisition
  // carries a reason-bearing NOLINT(lock-order): no cycle may be reported.
  AnalyzeRun run = RunAnalyze({"src/serve/lock_nolint.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(ScholarAnalyzeTest, LockOrderSeesCrossFixtureGraphInOneRun) {
  // Whole-program rule: feeding both cycle fixtures together reports both
  // cycles in one run.
  AnalyzeRun run =
      RunAnalyze({"src/serve/lock_cycle2.cc", "src/serve/lock_cycle3.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "lock-order cycle:"), 2u)
      << run.output;
}

// ---------------------------------------------------------------------------
// SARIF / baseline / cache surfaces
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, SarifOutputIsWellFormedAndCarriesFindings) {
  const std::string sarif = TempPath("out.sarif");
  AnalyzeRun run = RunAnalyzeArgs(
      {"--sarif=" + sarif, Fixture("src/rank/kernel/alloc_fire.cc"),
       Fixture("src/serve/lock_cycle2.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string text = ReadAll(sarif);
  EXPECT_TRUE(JsonIsBalanced(text)) << text;
  EXPECT_NE(text.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"scholar_analyze\""), std::string::npos);
  // One result per finding: 4 hot-loop-alloc + 1 lock-order cycle.
  EXPECT_EQ(CountOccurrences(text, "\"ruleId\""), 5u) << text;
  EXPECT_EQ(CountOccurrences(text, "scholarLineHash/v1"), 5u) << text;
  EXPECT_NE(text.find("src/rank/kernel/alloc_fire.cc"), std::string::npos);
  std::remove(sarif.c_str());
}

TEST(ScholarAnalyzeTest, BaselineRoundTripSuppressesKnownFindings) {
  const std::string baseline = TempPath("baseline.txt");
  AnalyzeRun write = RunAnalyzeArgs({"--write-baseline=" + baseline,
                                     Fixture("src/ensemble/det_fire.cc")});
  EXPECT_EQ(write.exit_code, 0) << write.output;
  EXPECT_NE(write.output.find("wrote 3 finding(s)"), std::string::npos)
      << write.output;

  AnalyzeRun gated = RunAnalyzeArgs(
      {"--baseline=" + baseline, Fixture("src/ensemble/det_fire.cc")});
  EXPECT_EQ(gated.exit_code, 0) << gated.output;
  EXPECT_NE(gated.output.find("0 finding(s) (3 baselined)"),
            std::string::npos)
      << gated.output;

  // A finding not in the baseline still fails the gate.
  AnalyzeRun mixed = RunAnalyzeArgs({"--baseline=" + baseline,
                                     Fixture("src/ensemble/det_fire.cc"),
                                     Fixture("src/serve/lock_self.cc")});
  EXPECT_EQ(mixed.exit_code, 1) << mixed.output;
  EXPECT_EQ(CountOccurrences(mixed.output, "self-deadlock:"), 1u)
      << mixed.output;
  std::remove(baseline.c_str());
}

TEST(ScholarAnalyzeTest, BaselinedFindingsAreMarkedSuppressedInSarif) {
  const std::string baseline = TempPath("sup_baseline.txt");
  const std::string sarif = TempPath("sup.sarif");
  AnalyzeRun write = RunAnalyzeArgs({"--write-baseline=" + baseline,
                                     Fixture("src/serve/lock_self.cc")});
  EXPECT_EQ(write.exit_code, 0) << write.output;
  AnalyzeRun gated =
      RunAnalyzeArgs({"--baseline=" + baseline, "--sarif=" + sarif,
                      Fixture("src/serve/lock_self.cc")});
  EXPECT_EQ(gated.exit_code, 0) << gated.output;
  const std::string text = ReadAll(sarif);
  EXPECT_TRUE(JsonIsBalanced(text)) << text;
  EXPECT_EQ(CountOccurrences(text, "\"suppressions\""), 1u) << text;
  EXPECT_NE(text.find("\"kind\": \"external\""), std::string::npos) << text;
  std::remove(baseline.c_str());
  std::remove(sarif.c_str());
}

TEST(ScholarAnalyzeTest, CacheRoundTripIsFindingStable) {
  const std::string cache = TempPath("cache.bin");
  std::remove(cache.c_str());
  const std::vector<std::string> args = {
      "--cache=" + cache, Fixture("src/rank/kernel/alloc_fire.cc"),
      Fixture("src/serve/lock_cycle3.cc"), Fixture("src/data/status_fire.cc")};
  AnalyzeRun cold = RunAnalyzeArgs(args);
  EXPECT_EQ(cold.exit_code, 1) << cold.output;
  AnalyzeRun warm = RunAnalyzeArgs(args);
  EXPECT_EQ(warm.exit_code, 1) << warm.output;
  // Bit-identical diagnostics whether findings come from rules or cache.
  EXPECT_EQ(cold.output, warm.output);
  std::remove(cache.c_str());
}

// ---------------------------------------------------------------------------
// shared-mutation
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, SharedMutationFiresInParallelBodies) {
  AnalyzeRun run = RunAnalyze({"src/rank/shared_mutation_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "shared-mutation:"), 4u)
      << run.output;
  // All three write shapes are diagnosed distinctly.
  EXPECT_NE(run.output.find("'total' is captured by reference and updated"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'hits' is captured by reference and incremented"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'peak' is captured by reference and assigned"),
            std::string::npos)
      << run.output;
  // ParallelForChunks bodies are parallel regions too.
  EXPECT_NE(run.output.find("shared_mutation_fire.cc:41"), std::string::npos)
      << run.output;
  // The per-chunk `out[i] = carry` store must not be among the findings.
  EXPECT_EQ(CountOccurrences(run.output, "'out'"), 0u) << run.output;
  // Blocking primitives never count as lambda escape routes.
  EXPECT_EQ(CountOccurrences(run.output, "dangling-capture:"), 0u)
      << run.output;
}

TEST(ScholarAnalyzeTest, SharedMutationQuietOnSanctionedShapes) {
  // Per-chunk subscript, body-local, std::atomic, MutexLock scope: none
  // may fire.
  AnalyzeRun run = RunAnalyze({"src/rank/shared_mutation_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "shared-mutation:"), 0u)
      << run.output;
}

// ---------------------------------------------------------------------------
// dangling-capture
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, DanglingCaptureFiresOnEveryEscapeRoute) {
  AnalyzeRun run = RunAnalyze({"src/serve/dangling_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "dangling-capture:"), 4u)
      << run.output;
  EXPECT_NE(run.output.find("escapes via ThreadPool::Submit/Schedule"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("escapes via std::thread"), std::string::npos)
      << run.output;
  // The named-lambda walk names both the variable and its member sink.
  EXPECT_NE(run.output.find(
                "lambda 'task' (defined at line 39, captures &budget) "
                "escapes its scope via member 'hook_'"),
            std::string::npos)
      << run.output;
  // Interprocedural: RunLater is dangerous only because the may-outlive
  // summary sees it forward its callable argument to Submit.
  EXPECT_NE(run.output.find(
                "'RunLater' (its callable argument outlives the call)"),
            std::string::npos)
      << run.output;
  // Read-only bodies: the race rule stays quiet.
  EXPECT_EQ(CountOccurrences(run.output, "shared-mutation:"), 0u)
      << run.output;
}

TEST(ScholarAnalyzeTest, DanglingCaptureQuietOnValueBlockingAndInlineUse) {
  AnalyzeRun run = RunAnalyze({"src/serve/dangling_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "dangling-capture:"), 0u)
      << run.output;
}

// ---------------------------------------------------------------------------
// atomic-confinement
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, AtomicConfinementFiresOutsideAuditedModules) {
  AnalyzeRun run = RunAnalyze({"src/rank/atomic_order_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "atomic-confinement:"), 3u)
      << run.output;
  EXPECT_NE(run.output.find("'memory_order_relaxed'"), std::string::npos)
      << run.output;
  // The C++20 scoped spelling is recognized too.
  EXPECT_NE(run.output.find("'memory_order::release'"), std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, AtomicConfinementExemptsAuditedModules) {
  // Identical weak orders under src/serve/latency_histogram*: clean.
  AnalyzeRun run = RunAnalyze({"src/serve/latency_histogram_orders.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "atomic-confinement:"), 0u)
      << run.output;
}

TEST(ScholarAnalyzeTest, AtomicConfinementReasonedNolintSuppresses) {
  // A reason-bearing NOLINT(atomic-confinement) is the per-site audit
  // trail — and because it covers a live finding, the stale-nolint audit
  // must stay quiet as well.
  AnalyzeRun run = RunAnalyze({"src/stream/atomic_nolint_live.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "atomic-confinement:"), 0u)
      << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "stale-nolint:"), 0u) << run.output;
}

// ---------------------------------------------------------------------------
// guard-consistency
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, GuardConsistencyFiresAcrossFunctions) {
  AnalyzeRun run = RunAnalyze({"src/serve/guard_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "guard-consistency:"), 1u)
      << run.output;
  // The finding lands on the bare read and cites the guarded witness.
  EXPECT_NE(run.output.find("guard_fire.cc:24"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("field 'Ledger::balance_' is accessed under a "
                            "mutex in Ledger::Credit"),
            std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, GuardConsistencySeesAcrossTranslationUnits) {
  // The guarded witness and the bare access live in different files;
  // only a run over both can connect them.
  AnalyzeRun both =
      RunAnalyze({"src/serve/guard_tu_a.cc", "src/serve/guard_tu_b.cc"});
  EXPECT_EQ(both.exit_code, 1) << both.output;
  EXPECT_EQ(CountOccurrences(both.output, "guard-consistency:"), 1u)
      << both.output;
  EXPECT_NE(both.output.find("guard_tu_b.cc:16"), std::string::npos)
      << both.output;
  EXPECT_NE(both.output.find("Gauge::Set (src/serve/guard_tu_a.cc:23)"),
            std::string::npos)
      << both.output;

  // The bare half alone has no guarded witness: clean.
  AnalyzeRun alone = RunAnalyze({"src/serve/guard_tu_b.cc"});
  EXPECT_EQ(alone.exit_code, 0) << alone.output;
}

TEST(ScholarAnalyzeTest, GuardConsistencyQuietOnConsistentDiscipline) {
  AnalyzeRun run = RunAnalyze({"src/serve/guard_clean.cc"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "guard-consistency:"), 0u)
      << run.output;
}

// ---------------------------------------------------------------------------
// stale-nolint
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, StaleNolintFiresWhenSuppressionGoesDead) {
  // A reasoned parallel-pack NOLINT whose line produces no such finding
  // is itself a finding: the audited risk is gone.
  AnalyzeRun run = RunAnalyze({"src/stream/stale_nolint_fire.cc"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(CountOccurrences(run.output, "stale-nolint:"), 1u) << run.output;
  EXPECT_NE(run.output.find(
                "NOLINT(shared-mutation) here no longer suppresses"),
            std::string::npos)
      << run.output;
}

TEST(ScholarAnalyzeTest, StaleNolintSurvivesWarmCache) {
  // The audit must reach the same verdicts when nolint markers and
  // suppressed findings are replayed from the cache instead of re-lexed.
  const std::string cache = TempPath("stale_cache.bin");
  std::remove(cache.c_str());
  const std::vector<std::string> args = {
      "--cache=" + cache, Fixture("src/stream/stale_nolint_fire.cc"),
      Fixture("src/stream/atomic_nolint_live.cc")};
  AnalyzeRun cold = RunAnalyzeArgs(args);
  EXPECT_EQ(cold.exit_code, 1) << cold.output;
  EXPECT_EQ(CountOccurrences(cold.output, "stale-nolint:"), 1u)
      << cold.output;
  AnalyzeRun warm = RunAnalyzeArgs(args);
  EXPECT_EQ(warm.exit_code, 1) << warm.output;
  EXPECT_EQ(cold.output, warm.output);
  std::remove(cache.c_str());
}

TEST(ScholarAnalyzeTest, SarifCarriesParallelPackMetadata) {
  const std::string sarif = TempPath("parallel_pack.sarif");
  AnalyzeRun run = RunAnalyzeArgs(
      {"--sarif=" + sarif, Fixture("src/rank/shared_mutation_fire.cc"),
       Fixture("src/serve/dangling_fire.cc"),
       Fixture("src/rank/atomic_order_fire.cc"),
       Fixture("src/serve/guard_fire.cc")});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::string text = ReadAll(sarif);
  EXPECT_TRUE(JsonIsBalanced(text)) << text;
  // Driver metadata describes every parallel-pack rule.
  for (const char* id : {"shared-mutation", "dangling-capture",
                         "atomic-confinement", "guard-consistency",
                         "stale-nolint"}) {
    EXPECT_NE(text.find("{\"id\": \"" + std::string(id) + "\""),
              std::string::npos)
        << "missing rule metadata for " << id;
  }
  // One result per finding: 4 shared-mutation + 4 dangling-capture +
  // 3 atomic-confinement + 1 guard-consistency.
  EXPECT_EQ(CountOccurrences(text, "\"ruleId\""), 12u) << text;
  EXPECT_EQ(CountOccurrences(text, "scholarLineHash/v1"), 12u) << text;
  std::remove(sarif.c_str());
}

// ---------------------------------------------------------------------------
// --jobs determinism
// ---------------------------------------------------------------------------

TEST(ScholarAnalyzeTest, JobsProduceByteIdenticalOutput) {
  // The contract behind running the analyzer under ThreadPool: stdout and
  // SARIF bytes are a pure function of the inputs, independent of the
  // worker count and of whether findings come from rules or cache.
  std::vector<std::string> targets = {
      Fixture("src/rank/shared_mutation_fire.cc"),
      Fixture("src/serve/dangling_fire.cc"),
      Fixture("src/rank/atomic_order_fire.cc"),
      Fixture("src/serve/guard_tu_a.cc"),
      Fixture("src/serve/guard_tu_b.cc"),
      Fixture("src/stream/stale_nolint_fire.cc"),
      Fixture("src/stream/atomic_nolint_live.cc"),
      Fixture("src/ensemble/det_fire.cc"),
      Fixture("src/serve/lock_cycle2.cc")};

  std::string serial_sarif;
  std::string serial_stdout;
  for (const char* jobs : {"1", "2", "8"}) {
    const std::string sarif = TempPath(std::string("jobs_") + jobs + ".sarif");
    std::vector<std::string> args = {std::string("--jobs=") + jobs,
                                     "--sarif=" + sarif};
    args.insert(args.end(), targets.begin(), targets.end());
    AnalyzeRun run = RunAnalyzeArgs(args);
    EXPECT_EQ(run.exit_code, 1) << run.output;
    // Timing goes to stderr and depends on the run; strip those lines
    // before comparing the merged capture.
    std::string cleaned;
    std::istringstream lines(run.output);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("scholar_analyze: timing ") == std::string::npos) {
        cleaned += line + "\n";
      }
    }
    const std::string text = ReadAll(sarif);
    if (serial_sarif.empty()) {
      serial_sarif = text;
      serial_stdout = cleaned;
    } else {
      EXPECT_EQ(text, serial_sarif) << "--jobs=" << jobs;
      EXPECT_EQ(cleaned, serial_stdout) << "--jobs=" << jobs;
    }
    std::remove(sarif.c_str());
  }

  // Warm cache, parallel run: still the same bytes.
  const std::string cache = TempPath("jobs_cache.bin");
  std::remove(cache.c_str());
  for (int pass = 0; pass < 2; ++pass) {
    const std::string sarif = TempPath("jobs_warm.sarif");
    std::vector<std::string> args = {"--jobs=8", "--cache=" + cache,
                                     "--sarif=" + sarif};
    args.insert(args.end(), targets.begin(), targets.end());
    AnalyzeRun run = RunAnalyzeArgs(args);
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_EQ(ReadAll(sarif), serial_sarif) << "cache pass " << pass;
    std::remove(sarif.c_str());
  }
  std::remove(cache.c_str());
}

TEST(ScholarAnalyzeTest, MalformedJobsValueExitsWithUsageError) {
  AnalyzeRun run =
      RunAnalyzeArgs({"--jobs=two", Fixture("src/data/status_clean.cc")});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(ScholarAnalyzeTest, MissingFileExitsWithUsageError) {
  AnalyzeRun run = RunAnalyze({"src/does_not_exist.cc"});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(ScholarAnalyzeTest, UnknownFlagExitsWithUsageError) {
  AnalyzeRun run = RunAnalyzeArgs({"--frobnicate", Fixture("src/data/status_clean.cc")});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
