#include "rank/venue_rank.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeTinyGraph;

TEST(VenueRankTest, RequiresVenueData) {
  CitationGraph g = MakeTinyGraph();
  EXPECT_TRUE(VenueRankRanker().Rank(g).status().IsInvalidArgument());
}

TEST(VenueRankTest, VenueSizeMustMatch) {
  CitationGraph g = MakeTinyGraph();
  std::vector<int32_t> venues = {0, 0};  // graph has 5 nodes
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  EXPECT_TRUE(VenueRankRanker().Rank(ctx).status().IsInvalidArgument());
}

TEST(VenueRankTest, PrestigiousVenueLiftsUncitedArticle) {
  // Venue 0's articles are heavily cited; venue 1's are not. Two fresh
  // uncited articles differ only in venue: the venue-0 one must rank
  // higher.
  GraphBuilder builder;
  NodeId good0 = builder.AddNode(2000);  // venue 0, cited
  NodeId good1 = builder.AddNode(2000);  // venue 0, cited
  NodeId weak0 = builder.AddNode(2000);  // venue 1, uncited
  NodeId fresh_good = builder.AddNode(2005);  // venue 0, uncited
  NodeId fresh_weak = builder.AddNode(2005);  // venue 1, uncited
  for (int i = 0; i < 6; ++i) {
    NodeId citer = builder.AddNode(2001 + i % 3);
    SCHOLAR_CHECK_OK(builder.AddEdge(citer, good0));
    SCHOLAR_CHECK_OK(builder.AddEdge(citer, good1));
  }
  CitationGraph g = std::move(builder).Build().value();
  std::vector<int32_t> venues = {0, 0, 1, 0, 1, -1, -1, -1, -1, -1, -1};
  ASSERT_EQ(venues.size(), g.num_nodes());
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  RankResult r = VenueRankRanker().Rank(ctx).value();
  EXPECT_GT(r.scores[fresh_good], r.scores[fresh_weak]);
  EXPECT_GT(r.scores[good0], r.scores[weak0]);
}

TEST(VenueRankTest, LambdaOneIgnoresVenues) {
  CitationGraph g = MakeTinyGraph();
  std::vector<int32_t> venues = {0, 1, 0, 1, 0};
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  VenueRankOptions o;
  o.lambda = 1.0;
  RankResult with_venues = VenueRankRanker(o).Rank(ctx).value();
  std::vector<int32_t> other_venues = {1, 0, 1, 0, 1};
  ctx.venues = &other_venues;
  RankResult swapped = VenueRankRanker(o).Rank(ctx).value();
  EXPECT_EQ(with_venues.scores, swapped.scores);
}

TEST(VenueRankTest, UnknownVenueUsesGlobalMean) {
  CitationGraph g = MakeGraph({2000, 2000}, {});
  std::vector<int32_t> venues = {-1, -1};
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  RankResult r = VenueRankRanker().Rank(ctx).value();
  ASSERT_EQ(r.scores.size(), 2u);
  EXPECT_DOUBLE_EQ(r.scores[0], r.scores[1]);
}

TEST(VenueRankTest, RejectsBadOptions) {
  CitationGraph g = MakeTinyGraph();
  std::vector<int32_t> venues(5, 0);
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  VenueRankOptions o;
  o.lambda = 1.5;
  EXPECT_TRUE(VenueRankRanker(o).Rank(ctx).status().IsInvalidArgument());
  o = VenueRankOptions();
  o.iterations = 0;
  EXPECT_TRUE(VenueRankRanker(o).Rank(ctx).status().IsInvalidArgument());
  std::vector<int32_t> bad = {0, 0, 0, 0, -2};
  ctx.venues = &bad;
  EXPECT_TRUE(VenueRankRanker().Rank(ctx).status().IsInvalidArgument());
}

TEST(VenueRankTest, EmptyGraph) {
  CitationGraph g;
  std::vector<int32_t> venues;
  RankContext ctx;
  ctx.graph = &g;
  ctx.venues = &venues;
  RankResult r = VenueRankRanker().Rank(ctx).value();
  EXPECT_TRUE(r.scores.empty());
}

}  // namespace
}  // namespace scholar
