#include "rank/hits.h"

#include <cmath>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

double L2Norm(const std::vector<double>& v) {
  double sq = 0.0;
  for (double x : v) sq += x * x;
  return std::sqrt(sq);
}

TEST(HitsTest, AuthoritiesAreL2Normalized) {
  RankResult r = HitsRanker().Rank(MakeTinyGraph()).value();
  EXPECT_NEAR(L2Norm(r.scores), 1.0, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(HitsTest, StarCenterIsTheAuthority) {
  std::vector<Year> years(10, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 10; ++u) edges.push_back({u, 0});
  RankResult r = HitsRanker().Rank(MakeGraph(years, edges)).value();
  for (NodeId v = 1; v < 10; ++v) EXPECT_GT(r.scores[0], r.scores[v]);
}

TEST(HitsTest, HubsAndAuthoritiesSeparateOnBipartiteGraph) {
  // Hubs 0,1 cite authorities 2,3: hubs get zero authority.
  CitationGraph g = MakeGraph({2000, 2000, 1999, 1999},
                              {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  HitsRanker ranker;
  auto both = ranker.RankBoth(g).value();
  EXPECT_NEAR(both.authorities[0], 0.0, 1e-9);
  EXPECT_NEAR(both.authorities[1], 0.0, 1e-9);
  EXPECT_GT(both.authorities[2], 0.5);
  EXPECT_NEAR(both.hubs[2], 0.0, 1e-9);
  EXPECT_GT(both.hubs[0], 0.5);
  // Symmetry: the two hubs tie, the two authorities tie.
  EXPECT_NEAR(both.hubs[0], both.hubs[1], 1e-9);
  EXPECT_NEAR(both.authorities[2], both.authorities[3], 1e-9);
}

TEST(HitsTest, EmptyGraph) {
  RankResult r = HitsRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(HitsTest, EdgelessGraphStaysAtInitialVector) {
  CitationGraph g = MakeGraph({2000, 2001}, {});
  RankResult r = HitsRanker().Rank(g).value();
  // No reinforcement possible; authority collapses to zero after one
  // multiply, and normalization keeps it there.
  EXPECT_NEAR(r.scores[0], 0.0, 1e-9);
  EXPECT_NEAR(r.scores[1], 0.0, 1e-9);
}

TEST(HitsTest, MoreCitedMeansMoreAuthority) {
  CitationGraph g = MakeGraph({2000, 2000, 2001, 2001, 2001},
                              {{2, 0}, {3, 0}, {4, 0}, {4, 1}});
  RankResult r = HitsRanker().Rank(g).value();
  EXPECT_GT(r.scores[0], r.scores[1]);
}

TEST(HitsTest, RejectsNonPositiveIterations) {
  HitsOptions o;
  o.max_iterations = 0;
  EXPECT_TRUE(
      HitsRanker(o).Rank(MakeTinyGraph()).status().IsInvalidArgument());
}

TEST(HitsTest, DeterministicOnRandomGraph) {
  CitationGraph g = MakeRandomGraph(200, 4, 1990, 10, 17);
  RankResult a = HitsRanker().Rank(g).value();
  RankResult b = HitsRanker().Rank(g).value();
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_NEAR(L2Norm(a.scores), 1.0, 1e-6);
}

}  // namespace
}  // namespace scholar
