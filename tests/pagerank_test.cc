#include "rank/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, ScoresFormDistribution) {
  PageRankRanker ranker;
  RankResult r = ranker.Rank(MakeTinyGraph()).value();
  ASSERT_EQ(r.scores.size(), 5u);
  EXPECT_NEAR(Sum(r.scores), 1.0, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 1);
  for (double s : r.scores) EXPECT_GT(s, 0.0);
}

TEST(PageRankTest, UniformOnDirectedCycle) {
  // 0<-1<-2<-3<-0: perfect symmetry, every node gets 1/4.
  CitationGraph g = MakeGraph({2000, 2000, 2000, 2000},
                              {{1, 0}, {2, 1}, {3, 2}, {0, 3}});
  RankResult r = PageRankRanker().Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  std::vector<Year> years(20, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 20; ++u) edges.push_back({u, 0});
  RankResult r = PageRankRanker().Rank(MakeGraph(years, edges)).value();
  for (NodeId v = 1; v < 20; ++v) EXPECT_GT(r.scores[0], r.scores[v]);
}

TEST(PageRankTest, MatchesHandComputedTwoNodeChain) {
  // 1 -> 0. With d = 0.85, n = 2:
  //   s0 = 0.85*(s1 + dangling(s0)) /? — verify against closed form instead:
  // s1 receives only teleport + dangling share; solve the 2x2 fixed point.
  CitationGraph g = MakeGraph({2000, 2001}, {{1, 0}});
  PowerIterationOptions o;
  o.damping = 0.85;
  o.tolerance = 1e-14;
  RankResult r = PageRankRanker(o).Rank(g).value();
  // Fixed point equations (node 0 is dangling, mass redistributed
  // uniformly):
  //   s0 = 0.85*(s1 + s0/2) + 0.15/2
  //   s1 = 0.85*(s0/2)      + 0.15/2
  // Solving: s1 = (0.075 + 0.425*s0), s0 = 0.85*s1 + 0.425*s0 + 0.075.
  double s0 = r.scores[0], s1 = r.scores[1];
  EXPECT_NEAR(s0, 0.85 * (s1 + s0 / 2) + 0.075, 1e-9);
  EXPECT_NEAR(s1, 0.85 * (s0 / 2) + 0.075, 1e-9);
  EXPECT_NEAR(s0 + s1, 1.0, 1e-9);
}

TEST(PageRankTest, ZeroDampingGivesJumpVector) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  o.damping = 0.0;
  RankResult r = PageRankRanker(o).Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 0.2, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(PageRankTest, AllDanglingGraphIsUniform) {
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {});
  RankResult r = PageRankRanker().Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 1.0 / 3, 1e-9);
}

TEST(PageRankTest, EmptyGraph) {
  RankResult r = PageRankRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(PageRankTest, SingleNode) {
  CitationGraph g = MakeGraph({2000}, {});
  RankResult r = PageRankRanker().Rank(g).value();
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
}

TEST(PageRankTest, RejectsBadDamping) {
  PowerIterationOptions o;
  o.damping = 1.0;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
  o.damping = -0.1;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(PageRankTest, RejectsNonPositiveMaxIterations) {
  PowerIterationOptions o;
  o.max_iterations = 0;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(PageRankTest, ReportsNonConvergenceWhenIterationsExhausted) {
  PowerIterationOptions o;
  o.max_iterations = 2;
  o.tolerance = 1e-15;
  RankResult r = PageRankRanker(o).Rank(MakeRandomGraph(200, 4, 1990, 10, 3))
                     .value();
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_GT(r.final_residual, 0.0);
}

TEST(WeightedPowerIterationTest, UnitWeightsEqualUnweighted) {
  CitationGraph g = MakeRandomGraph(300, 4, 1990, 10, 7);
  PowerIterationOptions o;
  RankResult plain =
      WeightedPowerIteration(g, {}, {}, o).value();
  std::vector<double> ones(g.num_edges(), 1.0);
  RankResult weighted = WeightedPowerIteration(g, ones, {}, o).value();
  for (size_t i = 0; i < plain.scores.size(); ++i) {
    EXPECT_NEAR(plain.scores[i], weighted.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, ScalingWeightsIsInvariant) {
  // Row-normalization makes uniform weight scaling a no-op.
  CitationGraph g = MakeRandomGraph(200, 3, 1990, 10, 9);
  std::vector<double> w(g.num_edges());
  Rng rng(4);
  for (double& x : w) x = rng.NextDouble(0.1, 2.0);
  std::vector<double> w5 = w;
  for (double& x : w5) x *= 5.0;
  PowerIterationOptions o;
  RankResult a = WeightedPowerIteration(g, w, {}, o).value();
  RankResult b = WeightedPowerIteration(g, w5, {}, o).value();
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, ZeroWeightRowActsDangling) {
  // Node 2 cites 0 and 1, but all its edge weights are zero -> behaves like
  // a dangling node: same scores as the graph without those edges.
  CitationGraph with_edges =
      MakeGraph({2000, 2000, 2001}, {{2, 0}, {2, 1}});
  std::vector<double> zero_weights(with_edges.num_edges(), 0.0);
  CitationGraph without_edges = MakeGraph({2000, 2000, 2001}, {});
  PowerIterationOptions o;
  RankResult a =
      WeightedPowerIteration(with_edges, zero_weights, {}, o).value();
  RankResult b = WeightedPowerIteration(without_edges, {}, {}, o).value();
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, CustomJumpVectorShiftsMass) {
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {});
  std::vector<double> jump = {0.0, 0.0, 1.0};
  PowerIterationOptions o;
  RankResult r = WeightedPowerIteration(g, {}, jump, o).value();
  // All nodes dangling: stationary distribution equals the jump vector.
  EXPECT_NEAR(r.scores[2], 1.0, 1e-9);
  EXPECT_NEAR(r.scores[0], 0.0, 1e-9);
}

TEST(WeightedPowerIterationTest, ValidatesInputs) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  // Wrong weight size.
  EXPECT_TRUE(WeightedPowerIteration(g, {1.0}, {}, o)
                  .status()
                  .IsInvalidArgument());
  // Negative weight.
  std::vector<double> w(g.num_edges(), 1.0);
  w[0] = -1.0;
  EXPECT_TRUE(
      WeightedPowerIteration(g, w, {}, o).status().IsInvalidArgument());
  // Wrong jump size.
  EXPECT_TRUE(WeightedPowerIteration(g, {}, {0.5, 0.5}, o)
                  .status()
                  .IsInvalidArgument());
  // Jump does not sum to 1.
  std::vector<double> bad_jump(g.num_nodes(), 0.4);
  EXPECT_TRUE(WeightedPowerIteration(g, {}, bad_jump, o)
                  .status()
                  .IsInvalidArgument());
  // Negative jump entry.
  std::vector<double> neg_jump = {1.4, -0.1, -0.1, -0.1, -0.1};
  EXPECT_TRUE(WeightedPowerIteration(g, {}, neg_jump, o)
                  .status()
                  .IsInvalidArgument());
}

class PageRankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageRankPropertyTest, DistributionAndDeterminism) {
  CitationGraph g = MakeRandomGraph(400, 5, 1985, 20, GetParam());
  RankResult a = PageRankRanker().Rank(g).value();
  RankResult b = PageRankRanker().Rank(g).value();
  EXPECT_NEAR(Sum(a.scores), 1.0, 1e-8);
  EXPECT_EQ(a.scores, b.scores);  // bit-for-bit deterministic
  EXPECT_TRUE(a.converged);
}

TEST_P(PageRankPropertyTest, MoreCitedOfTwinsWins) {
  // Append two twin nodes x, y citing nothing; x gets strictly more citers.
  GraphBuilder builder;
  for (int i = 0; i < 50; ++i) builder.AddNode(2000);
  NodeId x = builder.AddNode(2001);
  NodeId y = builder.AddNode(2001);
  Rng rng(GetParam());
  for (NodeId u = 0; u < 50; ++u) {
    SCHOLAR_CHECK_OK(builder.AddEdge(u, x));
    if (u % 2 == 0) SCHOLAR_CHECK_OK(builder.AddEdge(u, y));
  }
  CitationGraph g = std::move(builder).Build().value();
  RankResult r = PageRankRanker().Rank(g).value();
  EXPECT_GT(r.scores[x], r.scores[y]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankPropertyTest,
                         ::testing::Values(1, 5, 13, 77));

}  // namespace
}  // namespace scholar
