#include "rank/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>
#include "test_util.h"

namespace scholar {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeRandomGraph;
using testing_util::MakeTinyGraph;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, ScoresFormDistribution) {
  PageRankRanker ranker;
  RankResult r = ranker.Rank(MakeTinyGraph()).value();
  ASSERT_EQ(r.scores.size(), 5u);
  EXPECT_NEAR(Sum(r.scores), 1.0, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 1);
  for (double s : r.scores) EXPECT_GT(s, 0.0);
}

TEST(PageRankTest, UniformOnDirectedCycle) {
  // 0<-1<-2<-3<-0: perfect symmetry, every node gets 1/4.
  CitationGraph g = MakeGraph({2000, 2000, 2000, 2000},
                              {{1, 0}, {2, 1}, {3, 2}, {0, 3}});
  RankResult r = PageRankRanker().Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  std::vector<Year> years(20, 2000);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 1; u < 20; ++u) edges.push_back({u, 0});
  RankResult r = PageRankRanker().Rank(MakeGraph(years, edges)).value();
  for (NodeId v = 1; v < 20; ++v) EXPECT_GT(r.scores[0], r.scores[v]);
}

TEST(PageRankTest, MatchesHandComputedTwoNodeChain) {
  // 1 -> 0. With d = 0.85, n = 2:
  //   s0 = 0.85*(s1 + dangling(s0)) /? — verify against closed form instead:
  // s1 receives only teleport + dangling share; solve the 2x2 fixed point.
  CitationGraph g = MakeGraph({2000, 2001}, {{1, 0}});
  PowerIterationOptions o;
  o.damping = 0.85;
  o.tolerance = 1e-14;
  RankResult r = PageRankRanker(o).Rank(g).value();
  // Fixed point equations (node 0 is dangling, mass redistributed
  // uniformly):
  //   s0 = 0.85*(s1 + s0/2) + 0.15/2
  //   s1 = 0.85*(s0/2)      + 0.15/2
  // Solving: s1 = (0.075 + 0.425*s0), s0 = 0.85*s1 + 0.425*s0 + 0.075.
  double s0 = r.scores[0], s1 = r.scores[1];
  EXPECT_NEAR(s0, 0.85 * (s1 + s0 / 2) + 0.075, 1e-9);
  EXPECT_NEAR(s1, 0.85 * (s0 / 2) + 0.075, 1e-9);
  EXPECT_NEAR(s0 + s1, 1.0, 1e-9);
}

TEST(PageRankTest, ZeroDampingGivesJumpVector) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  o.damping = 0.0;
  RankResult r = PageRankRanker(o).Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 0.2, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(PageRankTest, AllDanglingGraphIsUniform) {
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {});
  RankResult r = PageRankRanker().Rank(g).value();
  for (double s : r.scores) EXPECT_NEAR(s, 1.0 / 3, 1e-9);
}

TEST(PageRankTest, EmptyGraph) {
  RankResult r = PageRankRanker().Rank(CitationGraph()).value();
  EXPECT_TRUE(r.scores.empty());
}

TEST(PageRankTest, SingleNode) {
  CitationGraph g = MakeGraph({2000}, {});
  RankResult r = PageRankRanker().Rank(g).value();
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
}

TEST(PageRankTest, RejectsBadDamping) {
  PowerIterationOptions o;
  o.damping = 1.0;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
  o.damping = -0.1;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(PageRankTest, RejectsNonPositiveMaxIterations) {
  PowerIterationOptions o;
  o.max_iterations = 0;
  EXPECT_TRUE(PageRankRanker(o)
                  .Rank(MakeTinyGraph())
                  .status()
                  .IsInvalidArgument());
}

TEST(PageRankTest, ReportsNonConvergenceWhenIterationsExhausted) {
  PowerIterationOptions o;
  o.max_iterations = 2;
  o.tolerance = 1e-15;
  RankResult r = PageRankRanker(o).Rank(MakeRandomGraph(200, 4, 1990, 10, 3))
                     .value();
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_GT(r.final_residual, 0.0);
}

TEST(WeightedPowerIterationTest, UnitWeightsEqualUnweighted) {
  CitationGraph g = MakeRandomGraph(300, 4, 1990, 10, 7);
  PowerIterationOptions o;
  RankResult plain =
      WeightedPowerIteration(g, {}, {}, o).value();
  std::vector<double> ones(g.num_edges(), 1.0);
  RankResult weighted = WeightedPowerIteration(g, ones, {}, o).value();
  for (size_t i = 0; i < plain.scores.size(); ++i) {
    EXPECT_NEAR(plain.scores[i], weighted.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, ScalingWeightsIsInvariant) {
  // Row-normalization makes uniform weight scaling a no-op.
  CitationGraph g = MakeRandomGraph(200, 3, 1990, 10, 9);
  std::vector<double> w(g.num_edges());
  Rng rng(4);
  for (double& x : w) x = rng.NextDouble(0.1, 2.0);
  std::vector<double> w5 = w;
  for (double& x : w5) x *= 5.0;
  PowerIterationOptions o;
  RankResult a = WeightedPowerIteration(g, w, {}, o).value();
  RankResult b = WeightedPowerIteration(g, w5, {}, o).value();
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, ZeroWeightRowActsDangling) {
  // Node 2 cites 0 and 1, but all its edge weights are zero -> behaves like
  // a dangling node: same scores as the graph without those edges.
  CitationGraph with_edges =
      MakeGraph({2000, 2000, 2001}, {{2, 0}, {2, 1}});
  std::vector<double> zero_weights(with_edges.num_edges(), 0.0);
  CitationGraph without_edges = MakeGraph({2000, 2000, 2001}, {});
  PowerIterationOptions o;
  RankResult a =
      WeightedPowerIteration(with_edges, zero_weights, {}, o).value();
  RankResult b = WeightedPowerIteration(without_edges, {}, {}, o).value();
  for (size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_NEAR(a.scores[i], b.scores[i], 1e-12);
  }
}

TEST(WeightedPowerIterationTest, CustomJumpVectorShiftsMass) {
  CitationGraph g = MakeGraph({2000, 2001, 2002}, {});
  std::vector<double> jump = {0.0, 0.0, 1.0};
  PowerIterationOptions o;
  RankResult r = WeightedPowerIteration(g, {}, jump, o).value();
  // All nodes dangling: stationary distribution equals the jump vector.
  EXPECT_NEAR(r.scores[2], 1.0, 1e-9);
  EXPECT_NEAR(r.scores[0], 0.0, 1e-9);
}

TEST(WeightedPowerIterationTest, ValidatesInputs) {
  CitationGraph g = MakeTinyGraph();
  PowerIterationOptions o;
  // Wrong weight size.
  EXPECT_TRUE(WeightedPowerIteration(g, {1.0}, {}, o)
                  .status()
                  .IsInvalidArgument());
  // Negative weight.
  std::vector<double> w(g.num_edges(), 1.0);
  w[0] = -1.0;
  EXPECT_TRUE(
      WeightedPowerIteration(g, w, {}, o).status().IsInvalidArgument());
  // Wrong jump size.
  EXPECT_TRUE(WeightedPowerIteration(g, {}, {0.5, 0.5}, o)
                  .status()
                  .IsInvalidArgument());
  // Jump does not sum to 1.
  std::vector<double> bad_jump(g.num_nodes(), 0.4);
  EXPECT_TRUE(WeightedPowerIteration(g, {}, bad_jump, o)
                  .status()
                  .IsInvalidArgument());
  // Negative jump entry.
  std::vector<double> neg_jump = {1.4, -0.1, -0.1, -0.1, -0.1};
  EXPECT_TRUE(WeightedPowerIteration(g, {}, neg_jump, o)
                  .status()
                  .IsInvalidArgument());
}

// Reference implementation of the same fixed point as a push (scatter) over
// the out-CSR — the shape the solver had before it became a pull over the
// in-CSR. Kept here as an independent oracle: the production code shares no
// loop with it.
RankResult PushOracle(const CitationGraph& graph,
                      const std::vector<double>& edge_weights,
                      const std::vector<double>& jump,
                      const PowerIterationOptions& options) {
  const size_t n = graph.num_nodes();
  const size_t m = graph.num_edges();
  std::vector<double> transition(m);
  std::vector<bool> dangling(n, false);
  for (NodeId u = 0; u < n; ++u) {
    const EdgeId begin = graph.out_offsets()[u];
    const EdgeId end = graph.out_offsets()[u + 1];
    double row_sum = 0.0;
    for (EdgeId e = begin; e < end; ++e) {
      row_sum += edge_weights.empty() ? 1.0 : edge_weights[e];
    }
    if (row_sum <= 0.0) {
      dangling[u] = true;
      continue;
    }
    for (EdgeId e = begin; e < end; ++e) {
      transition[e] = (edge_weights.empty() ? 1.0 : edge_weights[e]) / row_sum;
    }
  }
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> scores(n, uniform);
  std::vector<double> next(n, 0.0);
  RankResult result;
  result.converged = false;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (dangling[u]) {
        dangling_mass += scores[u];
        continue;
      }
      const EdgeId begin = graph.out_offsets()[u];
      const EdgeId end = graph.out_offsets()[u + 1];
      for (EdgeId e = begin; e < end; ++e) {
        next[graph.out_neighbors()[e]] += scores[u] * transition[e];
      }
    }
    const double teleport =
        options.damping * dangling_mass + (1.0 - options.damping);
    double residual = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double jv = jump.empty() ? uniform : jump[v];
      const double nv = options.damping * next[v] + teleport * jv;
      residual += std::abs(nv - scores[v]);
      next[v] = nv;
    }
    scores.swap(next);
    result.iterations = iter;
    result.final_residual = residual;
    if (residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(scores);
  return result;
}

TEST(WeightedPowerIterationTest, PullMatchesPushOracle) {
  for (uint64_t seed : {2u, 11u, 42u}) {
    CitationGraph g = MakeRandomGraph(500, 5, 1985, 15, seed);
    std::vector<double> w(g.num_edges());
    Rng rng(seed + 100);
    for (double& x : w) x = rng.NextDouble(0.0, 2.0);  // some zero-ish rows
    std::vector<double> jump(g.num_nodes());
    double jump_total = 0.0;
    for (double& j : jump) {
      j = rng.NextDouble(0.0, 1.0);
      jump_total += j;
    }
    for (double& j : jump) j /= jump_total;
    PowerIterationOptions o;
    o.tolerance = 1e-13;
    RankResult pull = WeightedPowerIteration(g, w, jump, o).value();
    RankResult push = PushOracle(g, w, jump, o);
    EXPECT_EQ(pull.iterations, push.iterations);
    ASSERT_EQ(pull.scores.size(), push.scores.size());
    for (size_t i = 0; i < pull.scores.size(); ++i) {
      EXPECT_NEAR(pull.scores[i], push.scores[i], 1e-12) << "node " << i;
    }
  }
}

TEST(WeightedPowerIterationTest, BitIdenticalAcrossThreadCounts) {
  CitationGraph g = MakeRandomGraph(3000, 6, 1980, 25, 17);
  std::vector<double> w(g.num_edges());
  Rng rng(5);
  for (double& x : w) x = rng.NextDouble(0.1, 3.0);
  PowerIterationOptions o;
  o.tolerance = 0.0;  // fixed work: every thread count runs all iterations
  o.max_iterations = 30;
  o.threads = 1;
  RankResult serial = WeightedPowerIteration(g, w, {}, o).value();
  for (int threads : {2, 8}) {
    o.threads = threads;
    RankResult parallel = WeightedPowerIteration(g, w, {}, o).value();
    EXPECT_EQ(serial.scores, parallel.scores) << threads << " threads";
    EXPECT_EQ(serial.final_residual, parallel.final_residual);
  }
}

TEST(WeightedPowerIterationTest, ScratchReuseMatchesFreshBuffers) {
  PowerIterationScratch scratch;
  PowerIterationOptions o;
  o.threads = 2;
  // Ranking different graphs through one scratch must equal fresh runs —
  // stale transition/dangling entries from the larger graph must not leak
  // into the smaller one.
  CitationGraph big = MakeRandomGraph(400, 5, 1990, 10, 3);
  CitationGraph small = MakeGraph({2000, 2001, 2002}, {{2, 0}});
  RankResult big_fresh = WeightedPowerIteration(big, {}, {}, o).value();
  RankResult big_reused =
      WeightedPowerIteration(big, {}, {}, o, {}, &scratch).value();
  EXPECT_EQ(big_fresh.scores, big_reused.scores);
  RankResult small_fresh = WeightedPowerIteration(small, {}, {}, o).value();
  RankResult small_reused =
      WeightedPowerIteration(small, {}, {}, o, {}, &scratch).value();
  EXPECT_EQ(small_fresh.scores, small_reused.scores);
}

class PageRankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageRankPropertyTest, DistributionAndDeterminism) {
  CitationGraph g = MakeRandomGraph(400, 5, 1985, 20, GetParam());
  RankResult a = PageRankRanker().Rank(g).value();
  RankResult b = PageRankRanker().Rank(g).value();
  EXPECT_NEAR(Sum(a.scores), 1.0, 1e-8);
  EXPECT_EQ(a.scores, b.scores);  // bit-for-bit deterministic
  EXPECT_TRUE(a.converged);
}

TEST_P(PageRankPropertyTest, MoreCitedOfTwinsWins) {
  // Append two twin nodes x, y citing nothing; x gets strictly more citers.
  GraphBuilder builder;
  for (int i = 0; i < 50; ++i) builder.AddNode(2000);
  NodeId x = builder.AddNode(2001);
  NodeId y = builder.AddNode(2001);
  Rng rng(GetParam());
  for (NodeId u = 0; u < 50; ++u) {
    SCHOLAR_CHECK_OK(builder.AddEdge(u, x));
    if (u % 2 == 0) SCHOLAR_CHECK_OK(builder.AddEdge(u, y));
  }
  CitationGraph g = std::move(builder).Build().value();
  RankResult r = PageRankRanker().Rank(g).value();
  EXPECT_GT(r.scores[x], r.scores[y]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankPropertyTest,
                         ::testing::Values(1, 5, 13, 77));

}  // namespace
}  // namespace scholar
